package attacker

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"tripwire/internal/emailprovider"
	"tripwire/internal/geo"
	"tripwire/internal/identity"
	"tripwire/internal/imap"
	"tripwire/internal/simclock"
	"tripwire/internal/webgen"
)

var t0 = time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)

func dumpFor(t *testing.T, policy webgen.StoragePolicy, entries map[string]string) []webgen.DumpEntry {
	t.Helper()
	st := webgen.NewStore(policy)
	i := 0
	for email, pw := range entries {
		user := strings.Split(email, "@")[0]
		salt := ""
		if policy == webgen.StoreStrongHash {
			salt = "salt" + user
		}
		if _, err := st.Create(user, email, pw, salt, t0); err != nil {
			t.Fatal(err)
		}
		i++
	}
	return st.Dump()
}

func TestCrackerPlaintextRecoversAll(t *testing.T) {
	c := &Cracker{Words: identity.DictionaryWords()}
	dump := dumpFor(t, webgen.StorePlaintext, map[string]string{
		"a@bigmail.test": "x9Qz7TkPm2", // hard-style
		"b@bigmail.test": "Website1",
	})
	creds := c.Crack(dump)
	if len(creds) != 2 {
		t.Fatalf("plaintext crack recovered %d of 2", len(creds))
	}
}

func TestCrackerReversible(t *testing.T) {
	c := &Cracker{Words: identity.DictionaryWords()}
	dump := dumpFor(t, webgen.StoreReversible, map[string]string{
		"a@bigmail.test": "x9Qz7TkPm2",
	})
	creds := c.Crack(dump)
	if len(creds) != 1 || creds[0].Password != "x9Qz7TkPm2" {
		t.Fatalf("reversible crack = %+v", creds)
	}
}

func TestCrackerHashSeparatesClasses(t *testing.T) {
	gen := identity.NewGenerator("bigmail.test", 5)
	hard := gen.New(identity.Hard)
	easy := gen.New(identity.Easy)
	for _, policy := range []webgen.StoragePolicy{webgen.StoreWeakHash, webgen.StoreStrongHash} {
		c := &Cracker{Words: identity.DictionaryWords()}
		dump := dumpFor(t, policy, map[string]string{
			hard.Email: hard.Password,
			easy.Email: easy.Password,
		})
		creds := c.Crack(dump)
		if len(creds) != 1 {
			t.Fatalf("%v: recovered %d, want exactly the easy one", policy, len(creds))
		}
		if creds[0].Email != easy.Email || creds[0].Password != easy.Password {
			t.Fatalf("%v: recovered %+v", policy, creds[0])
		}
	}
}

func TestFilterByDomain(t *testing.T) {
	creds := []Credential{
		{Email: "a@bigmail.test"},
		{Email: "b@Other.test"},
		{Email: "c@BIGMAIL.TEST"},
	}
	got := FilterByDomain(creds, "bigmail.test")
	if len(got) != 2 {
		t.Fatalf("filtered = %+v", got)
	}
}

func TestProxyPoolReuseAndCount(t *testing.T) {
	pool := NewProxyPool(geo.NewSpace(), 1, 0.5)
	seen := make(map[netip.Addr]int)
	for i := 0; i < 2000; i++ {
		seen[pool.Next()]++
	}
	if pool.DistinctCount() != len(seen) {
		t.Fatalf("DistinctCount = %d, map = %d", pool.DistinctCount(), len(seen))
	}
	reused := 0
	for _, n := range seen {
		if n > 1 {
			reused++
		}
	}
	if reused == 0 {
		t.Fatal("no proxy reuse with ReuseProb 0.5")
	}
	if len(seen) < 500 {
		t.Fatalf("distinct proxies %d suspiciously low", len(seen))
	}
}

// stuffFixture wires a provider + IMAP server + stuffer on a virtual clock.
func stuffFixture(t *testing.T) (*emailprovider.Provider, *Stuffer, *simclock.Clock) {
	t.Helper()
	clock := simclock.New(t0)
	p := emailprovider.New("bigmail.test")
	p.Now = clock.Now
	pool := NewProxyPool(geo.NewSpace(), 2, 0.1)
	st := NewStuffer(imap.NewServer(p), pool, clock.Now)
	return p, st, clock
}

func TestStufferLoginRecordsProviderEvent(t *testing.T) {
	p, st, _ := stuffFixture(t)
	p.CreateAccount("victim99@bigmail.test", "V", "Website1")
	p.Send("x@site.test", "victim99@bigmail.test", "Hello", "content")

	ok, ip := st.TryLogin(Credential{Email: "victim99@bigmail.test", Password: "Website1"}, true)
	if !ok {
		t.Fatal("valid credential rejected")
	}
	evs := p.AllLogins()
	if len(evs) != 1 {
		t.Fatalf("provider logged %d events", len(evs))
	}
	if evs[0].IP != ip || evs[0].Method != "IMAP" {
		t.Fatalf("event = %+v, ip = %v", evs[0], ip)
	}
	recs := st.Records()
	if len(recs) != 1 || !recs[0].Success {
		t.Fatalf("records = %+v", recs)
	}
}

func TestStufferWrongPasswordNotLogged(t *testing.T) {
	p, st, _ := stuffFixture(t)
	p.CreateAccount("victim98@bigmail.test", "V", "RealPass1")
	ok, _ := st.TryLogin(Credential{Email: "victim98@bigmail.test", Password: "Wrong1"}, false)
	if ok {
		t.Fatal("wrong credential accepted")
	}
	if len(p.AllLogins()) != 0 {
		t.Fatal("failed login appeared in provider log")
	}
}

func TestStufferPinnedIP(t *testing.T) {
	p, st, _ := stuffFixture(t)
	p.CreateAccount("victim97@bigmail.test", "V", "Website1")
	ip := netip.MustParseAddr("100.64.3.4")
	for i := 0; i < 5; i++ {
		if !st.TryLoginFrom(ip, Credential{Email: "victim97@bigmail.test", Password: "Website1"}, false) {
			t.Fatal("pinned-IP login failed")
		}
	}
	for _, ev := range p.AllLogins() {
		if ev.IP != ip {
			t.Fatalf("event from %v, want pinned %v", ev.IP, ip)
		}
	}
}

// TestCampaignEndToEnd drives one breach through exfil, cracking, and
// stuffing over virtual time and asserts the easy/hard asymmetry.
func TestCampaignEndToEnd(t *testing.T) {
	clock := simclock.New(t0)
	sched := simclock.NewScheduler(clock)
	p := emailprovider.New("bigmail.test")
	p.Now = clock.Now
	pool := NewProxyPool(geo.NewSpace(), 3, 0.1)
	stuffer := NewStuffer(imap.NewServer(p), pool, clock.Now)
	end := t0.Add(400 * 24 * time.Hour)
	cfg := DefaultCampaignConfig(end)
	camp := NewCampaign(cfg, sched, stuffer, p)

	gen := identity.NewGenerator("bigmail.test", 9)
	hard := gen.New(identity.Hard)
	easy := gen.New(identity.Easy)
	for _, id := range []*identity.Identity{hard, easy} {
		if err := p.CreateAccount(id.Email, id.FullName(), id.Password); err != nil {
			t.Fatal(err)
		}
	}
	store := webgen.NewStore(webgen.StoreWeakHash)
	local := func(email string) string { return strings.Split(email, "@")[0] }
	store.Create(local(hard.Email), hard.Email, hard.Password, "", t0)
	store.Create(local(easy.Email), easy.Email, easy.Password, "", t0)

	camp.Breach("victimsite.test", store, t0.Add(24*time.Hour))
	sched.RunUntil(end)

	if when, ok := camp.Breaches()["victimsite.test"]; !ok || when.Before(t0) {
		t.Fatalf("breach record missing: %v %v", when, ok)
	}
	evs := p.AllLogins()
	if len(evs) == 0 {
		t.Fatal("no provider logins after breach of weak-hash site with an easy account")
	}
	for _, ev := range evs {
		if ev.Account == hard.Email {
			t.Fatal("hard-password account accessed despite hashed storage")
		}
		if ev.Account != easy.Email {
			t.Fatalf("unexpected account %s accessed", ev.Account)
		}
	}
}

func TestCampaignPlaintextExposesHard(t *testing.T) {
	clock := simclock.New(t0)
	sched := simclock.NewScheduler(clock)
	p := emailprovider.New("bigmail.test")
	p.Now = clock.Now
	pool := NewProxyPool(geo.NewSpace(), 4, 0.1)
	stuffer := NewStuffer(imap.NewServer(p), pool, clock.Now)
	end := t0.Add(400 * 24 * time.Hour)
	camp := NewCampaign(DefaultCampaignConfig(end), sched, stuffer, p)

	gen := identity.NewGenerator("bigmail.test", 11)
	hard := gen.New(identity.Hard)
	p.CreateAccount(hard.Email, hard.FullName(), hard.Password)
	store := webgen.NewStore(webgen.StorePlaintext)
	store.Create("huser", hard.Email, hard.Password, "", t0)

	camp.Breach("plainsite.test", store, t0.Add(24*time.Hour))
	sched.RunUntil(end)

	found := false
	for _, ev := range p.AllLogins() {
		if ev.Account == hard.Email {
			found = true
		}
	}
	if !found {
		t.Fatal("hard account not accessed despite plaintext storage")
	}
}

func TestProfileStrings(t *testing.T) {
	for _, p := range []Profile{ProfileOneShot, ProfileFewChecks, ProfileScraper, ProfileBurstyMulti, ProfileBurstySingle} {
		if strings.Contains(p.String(), "?") {
			t.Errorf("Profile %d has no name", int(p))
		}
	}
}
