package attacker

import (
	"math/rand"
	"net"
	"net/netip"
	"sync"
	"time"

	"tripwire/internal/geo"
	"tripwire/internal/imap"
	"tripwire/internal/memconn"
	"tripwire/internal/pop3"
	"tripwire/internal/xrand"
)

// hotProxies is how many recurring exits the deterministic leasing path
// draws reuse from; a small set keeps per-IP reuse counts near the paper's
// observed heavy-reuse tail.
const hotProxies = 256

// fnv64 hashes an identifier for child-seed derivation (FNV-1a).
func fnv64(s string) uint64 {
	const offset64, prime64 = 14695981039866320922, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// ProxyPool models the attacker's access network: "a global network of
// predominantly compromised residential machines acting as proxies" (paper
// §6.4). Most logins come from fresh addresses; a minority of proxies are
// reused, and a few are reused heavily.
//
// The pool offers two leasing paths. Next draws from one shared RNG — fine
// for serial callers, but its results depend on global call order. Lease is
// the epoch-parallel path: the exit for (key, n) is a pure function of the
// pool seed, so concurrent leases by different accounts can never perturb
// each other's draws and timeline runs stay worker-count invariant.
type ProxyPool struct {
	mu       sync.Mutex
	space    *geo.Space
	seed     int64
	rng      *rand.Rand
	used     []netip.Addr // fresh exits leased via Next, its reuse pool
	hot      []netip.Addr // deterministic reuse set for Lease, built lazily
	distinct map[netip.Addr]struct{}
	// ReuseProb is the probability a login reuses a previously seen proxy
	// instead of leasing a fresh one.
	ReuseProb float64
}

// NewProxyPool returns a pool drawing from space.
func NewProxyPool(space *geo.Space, seed int64, reuseProb float64) *ProxyPool {
	return &ProxyPool{
		space:    space,
		seed:     seed,
		rng:      rand.New(rand.NewSource(seed)),
		distinct: make(map[netip.Addr]struct{}),
		ReuseProb: reuseProb,
	}
}

// Next leases an exit address for one login from the shared RNG. Results
// depend on global call order, so Next belongs on serial paths only.
func (p *ProxyPool) Next() netip.Addr {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.used) > 0 && p.rng.Float64() < p.ReuseProb {
		return p.used[p.rng.Intn(len(p.used))]
	}
	ip := p.space.SampleProxyIP(p.rng)
	p.used = append(p.used, ip)
	p.distinct[ip] = struct{}{}
	return ip
}

// Lease leases the exit address for the n-th draw of key (an account
// email). The result is a pure function of (pool seed, key, n): reuse rolls
// and fresh samples come from a private derived RNG, and reused exits come
// from a seed-derived hot set — so leases are deterministic under any
// interleaving of concurrent callers.
func (p *ProxyPool) Lease(key string, n uint64) netip.Addr {
	rng := xrand.New(xrand.Mix(p.seed, int64(fnv64(key)), int64(n)))
	p.mu.Lock()
	if p.hot == nil {
		hotRng := xrand.New(xrand.Mix(p.seed, -1, 0))
		p.hot = make([]netip.Addr, hotProxies)
		for i := range p.hot {
			p.hot[i] = p.space.SampleProxyIP(hotRng)
		}
	}
	var ip netip.Addr
	if rng.Float64() < p.ReuseProb {
		ip = p.hot[rng.Intn(len(p.hot))]
	} else {
		ip = p.space.SampleProxyIP(rng)
	}
	p.distinct[ip] = struct{}{}
	p.mu.Unlock()
	return ip
}

// DistinctCount returns how many distinct proxies have been leased.
func (p *ProxyPool) DistinctCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.distinct)
}

// LoginRecord is the attacker-side log of one attempt against the provider.
type LoginRecord struct {
	Email   string
	Time    time.Time
	IP      netip.Addr
	Success bool
}

// Stuffer performs credential-stuffing logins against an IMAP server using
// the real protocol over in-memory connections, with the proxy exit address
// injected as the remote IP the provider logs. A configurable minority of
// attempts use POP3 instead, matching the paper's "typically via IMAP"
// observation (§6.4).
//
// All of the stuffer's randomness (proxy leases, the IMAP/POP3 protocol
// split) derives from per-account draw counters, never from shared
// sequential RNGs, so concurrent stuffing of different accounts inside one
// timeline epoch produces exactly the logins a serial run would.
type Stuffer struct {
	Server *imap.Server
	Pool   *ProxyPool
	// Now supplies virtual timestamps for the attacker-side log.
	Now func() time.Time
	// Metrics, when non-nil, counts stuffing attempts and successes.
	Metrics *Metrics
	// Latency emulates one network round-trip of wall-clock delay per
	// login attempt (real stuffing tunnels through residential proxies and
	// is latency-bound, not CPU-bound). Zero — the default — keeps
	// simulations instant; benchmarks set it to measure how well timeline
	// workers overlap the waits.
	Latency time.Duration

	mu      sync.Mutex
	records []LoginRecord
	marked  int               // records index saved by BeginSegment
	rev     uint64            // durable-state mutation counter (checkpoint cache key)
	draws   map[string]uint64 // per-account deterministic draw counters
	pop     *pop3.Server
	popFrac float64
	popSeed int64
}

// NewStuffer returns a stuffing engine against server.
func NewStuffer(server *imap.Server, pool *ProxyPool, now func() time.Time) *Stuffer {
	return &Stuffer{Server: server, Pool: pool, Now: now, draws: make(map[string]uint64)}
}

// UsePOP routes frac of future logins through the given POP3 server, the
// way a minority of real collection tooling does. Which logins switch is a
// per-account deterministic function of (seed, email, draw count).
func (s *Stuffer) UsePOP(server *pop3.Server, frac float64, seed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pop = server
	s.popFrac = frac
	s.popSeed = seed
}

// nextDraw advances and returns the account's draw counter — the sequence
// number that makes every probabilistic choice about this account a pure
// function of (seed, email, how many draws came before).
func (s *Stuffer) nextDraw(email string) uint64 {
	s.mu.Lock()
	n := s.draws[email]
	s.draws[email] = n + 1
	s.rev++
	s.mu.Unlock()
	return n
}

func (s *Stuffer) pickPOP(email string) bool {
	s.mu.Lock()
	pop, frac, seed := s.pop, s.popFrac, s.popSeed
	s.mu.Unlock()
	if pop == nil || frac <= 0 {
		return false
	}
	rng := xrand.New(xrand.Mix(seed, int64(fnv64(email)), int64(s.nextDraw(email))))
	return rng.Float64() < frac
}

// LeaseIP leases a proxy exit for one login against email, deterministic
// per account (see ProxyPool.Lease).
func (s *Stuffer) LeaseIP(email string) netip.Addr {
	return s.Pool.Lease(email, s.nextDraw(email))
}

// BeginSegment / EndSegment implement simclock.Sequencer for the
// attacker-side record log, mirroring the provider's login ring: records
// appended during one parallel segment all share a timestamp, so a stable
// per-segment sort by account erases goroutine interleaving.
func (s *Stuffer) BeginSegment() {
	s.mu.Lock()
	s.marked = len(s.records)
	s.mu.Unlock()
}

// EndSegment closes the segment opened by BeginSegment.
func (s *Stuffer) EndSegment() {
	s.mu.Lock()
	blk := s.records[s.marked:]
	if len(blk) > 1 {
		sortRecords(blk)
		s.rev++
	}
	s.mu.Unlock()
}

// sortRecords stably orders a same-timestamp block by account email.
func sortRecords(blk []LoginRecord) {
	// Insertion sort: segment blocks are small and almost sorted, and this
	// avoids pulling package sort's interface boxing into the hot path.
	for i := 1; i < len(blk); i++ {
		for j := i; j > 0 && blk[j].Email < blk[j-1].Email; j-- {
			blk[j], blk[j-1] = blk[j-1], blk[j]
		}
	}
}

// TryLogin attempts one IMAP login with cred from a leased proxy. When
// siphon is true and the login succeeds, the session selects INBOX and
// fetches every message, modelling ongoing observation/scraping rather than
// a bare credential check. It returns whether the login succeeded and the
// exit IP used.
func (s *Stuffer) TryLogin(cred Credential, siphon bool) (bool, netip.Addr) {
	ip := s.LeaseIP(cred.Email)
	ok := s.loginVia(ip, cred, siphon)
	s.record(cred.Email, ip, ok)
	return ok, ip
}

// TryLoginFrom is TryLogin pinned to a specific exit (single-IP burst
// behaviour, paper §6.4.2).
func (s *Stuffer) TryLoginFrom(ip netip.Addr, cred Credential, siphon bool) bool {
	ok := s.loginVia(ip, cred, siphon)
	s.record(cred.Email, ip, ok)
	return ok
}

func (s *Stuffer) record(email string, ip netip.Addr, ok bool) {
	s.mu.Lock()
	s.records = append(s.records, LoginRecord{Email: email, Time: s.Now(), IP: ip, Success: ok})
	s.rev++
	s.mu.Unlock()
	s.Metrics.attempt(ok)
}

// bot bundles the reusable pieces of one in-flight IMAP stuffing session:
// a rewindable in-memory conn pair, a buffer-retaining client, and the
// join handle for the serving goroutine. Bots are pooled so steady-state
// stuffing performs no per-login connection or buffer allocation.
type bot struct {
	pair *memconn.Pair
	cli  imap.Client
	srv  *imap.Server
	ip   netip.Addr
	wg   sync.WaitGroup
}

var botPool = sync.Pool{New: func() any { return &bot{pair: memconn.NewPair()} }}

// serve runs the provider side of the session to completion.
func (b *bot) serve() {
	defer b.wg.Done()
	_ = b.srv.ServeConn(b.pair.Server(), b.ip)
	b.pair.Server().Close()
}

func (s *Stuffer) loginVia(ip netip.Addr, cred Credential, siphon bool) bool {
	if s.Latency > 0 {
		time.Sleep(s.Latency)
	}
	if s.pickPOP(cred.Email) {
		return s.loginPOP(ip, cred, siphon)
	}
	b := botPool.Get().(*bot)
	b.srv, b.ip = s.Server, ip
	b.pair.Reset()
	b.wg.Add(1)
	go b.serve()
	client := b.pair.Client()
	defer func() {
		client.Close()
		b.wg.Wait()
		b.srv = nil
		botPool.Put(b)
	}()

	c := &b.cli
	if err := c.Reset(client); err != nil {
		return false
	}
	if err := c.Login(cred.Email, cred.Password); err != nil {
		_ = c.Logout()
		return false
	}
	if siphon {
		if n, err := c.Select("INBOX"); err == nil && n > 0 {
			_, _ = c.Fetch(1, n)
		}
	}
	_ = c.Logout()
	return true
}

// loginPOP collects over POP3 instead of IMAP.
func (s *Stuffer) loginPOP(ip netip.Addr, cred Credential, siphon bool) bool {
	client, server := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = s.pop.ServeConn(server, ip)
		server.Close()
	}()
	defer func() {
		client.Close()
		<-done
	}()

	c, err := pop3.Dial(client)
	if err != nil {
		return false
	}
	if err := c.Auth(cred.Email, cred.Password); err != nil {
		_ = c.Quit()
		return false
	}
	if siphon {
		if n, err := c.Stat(); err == nil {
			for i := 1; i <= n; i++ {
				_, _ = c.Retr(i)
			}
		}
	}
	_ = c.Quit()
	return true
}

// Records returns the attacker-side login log.
func (s *Stuffer) Records() []LoginRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]LoginRecord, len(s.records))
	copy(out, s.records)
	return out
}
