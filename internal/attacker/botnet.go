package attacker

import (
	"math/rand"
	"net"
	"net/netip"
	"sync"
	"time"

	"tripwire/internal/geo"
	"tripwire/internal/imap"
	"tripwire/internal/pop3"
)

// ProxyPool models the attacker's access network: "a global network of
// predominantly compromised residential machines acting as proxies" (paper
// §6.4). Most logins come from fresh addresses; a minority of proxies are
// reused, and a few are reused heavily.
type ProxyPool struct {
	mu    sync.Mutex
	space *geo.Space
	rng   *rand.Rand
	used  []netip.Addr
	// ReuseProb is the probability a login reuses a previously seen proxy
	// instead of leasing a fresh one.
	ReuseProb float64
}

// NewProxyPool returns a pool drawing from space.
func NewProxyPool(space *geo.Space, seed int64, reuseProb float64) *ProxyPool {
	return &ProxyPool{space: space, rng: rand.New(rand.NewSource(seed)), ReuseProb: reuseProb}
}

// Next leases an exit address for one login.
func (p *ProxyPool) Next() netip.Addr {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.used) > 0 && p.rng.Float64() < p.ReuseProb {
		return p.used[p.rng.Intn(len(p.used))]
	}
	ip := p.space.SampleProxyIP(p.rng)
	p.used = append(p.used, ip)
	return ip
}

// DistinctCount returns how many distinct proxies have been leased.
func (p *ProxyPool) DistinctCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.used)
}

// LoginRecord is the attacker-side log of one attempt against the provider.
type LoginRecord struct {
	Email   string
	Time    time.Time
	IP      netip.Addr
	Success bool
}

// Stuffer performs credential-stuffing logins against an IMAP server using
// the real protocol over in-memory connections, with the proxy exit address
// injected as the remote IP the provider logs. A configurable minority of
// attempts use POP3 instead, matching the paper's "typically via IMAP"
// observation (§6.4).
type Stuffer struct {
	Server *imap.Server
	Pool   *ProxyPool
	// Now supplies virtual timestamps for the attacker-side log.
	Now func() time.Time
	// Metrics, when non-nil, counts stuffing attempts and successes.
	Metrics *Metrics

	mu      sync.Mutex
	records []LoginRecord
	pop     *pop3.Server
	popFrac float64
	popRng  *rand.Rand
}

// NewStuffer returns a stuffing engine against server.
func NewStuffer(server *imap.Server, pool *ProxyPool, now func() time.Time) *Stuffer {
	return &Stuffer{Server: server, Pool: pool, Now: now}
}

// UsePOP routes frac of future logins through the given POP3 server, the
// way a minority of real collection tooling does.
func (s *Stuffer) UsePOP(server *pop3.Server, frac float64, seed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pop = server
	s.popFrac = frac
	s.popRng = rand.New(rand.NewSource(seed))
}

func (s *Stuffer) pickPOP() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pop != nil && s.popRng != nil && s.popRng.Float64() < s.popFrac
}

// TryLogin attempts one IMAP login with cred from a leased proxy. When
// siphon is true and the login succeeds, the session selects INBOX and
// fetches every message, modelling ongoing observation/scraping rather than
// a bare credential check. It returns whether the login succeeded and the
// exit IP used.
func (s *Stuffer) TryLogin(cred Credential, siphon bool) (bool, netip.Addr) {
	ip := s.Pool.Next()
	ok := s.loginVia(ip, cred, siphon)
	s.mu.Lock()
	s.records = append(s.records, LoginRecord{Email: cred.Email, Time: s.Now(), IP: ip, Success: ok})
	s.mu.Unlock()
	s.Metrics.attempt(ok)
	return ok, ip
}

// TryLoginFrom is TryLogin pinned to a specific exit (single-IP burst
// behaviour, paper §6.4.2).
func (s *Stuffer) TryLoginFrom(ip netip.Addr, cred Credential, siphon bool) bool {
	ok := s.loginVia(ip, cred, siphon)
	s.mu.Lock()
	s.records = append(s.records, LoginRecord{Email: cred.Email, Time: s.Now(), IP: ip, Success: ok})
	s.mu.Unlock()
	s.Metrics.attempt(ok)
	return ok
}

func (s *Stuffer) loginVia(ip netip.Addr, cred Credential, siphon bool) bool {
	if s.pickPOP() {
		return s.loginPOP(ip, cred, siphon)
	}
	client, server := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = s.Server.ServeConn(server, ip)
		server.Close()
	}()
	defer func() {
		client.Close()
		<-done
	}()

	c, err := imap.Dial(client)
	if err != nil {
		return false
	}
	if err := c.Login(cred.Email, cred.Password); err != nil {
		_ = c.Logout()
		return false
	}
	if siphon {
		if n, err := c.Select("INBOX"); err == nil && n > 0 {
			_, _ = c.Fetch(1, n)
		}
	}
	_ = c.Logout()
	return true
}

// loginPOP collects over POP3 instead of IMAP.
func (s *Stuffer) loginPOP(ip netip.Addr, cred Credential, siphon bool) bool {
	client, server := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = s.pop.ServeConn(server, ip)
		server.Close()
	}()
	defer func() {
		client.Close()
		<-done
	}()

	c, err := pop3.Dial(client)
	if err != nil {
		return false
	}
	if err := c.Auth(cred.Email, cred.Password); err != nil {
		_ = c.Quit()
		return false
	}
	if siphon {
		if n, err := c.Stat(); err == nil {
			for i := 1; i <= n; i++ {
				_, _ = c.Retr(i)
			}
		}
	}
	_ = c.Quit()
	return true
}

// Records returns the attacker-side login log.
func (s *Stuffer) Records() []LoginRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]LoginRecord, len(s.records))
	copy(out, s.records)
	return out
}
