package attacker

import (
	"tripwire/internal/obs"
)

// Metrics aggregates attacker-side telemetry, shared between a Campaign
// and its Stuffer. A nil *Metrics is a no-op.
type Metrics struct {
	breaches       *obs.Counter
	credsCracked   *obs.Counter
	stuffAttempts  *obs.Counter
	stuffSuccesses *obs.Counter
	resales        *obs.Counter
	spamTakedowns  *obs.Counter
	takeovers      *obs.Counter
	credsAbandoned *obs.Counter
}

// NewMetrics registers the attacker metric families on r.
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		breaches:       r.Counter("tripwire_attacker_breaches_total", "Site databases exfiltrated."),
		credsCracked:   r.Counter("tripwire_attacker_creds_cracked_total", "Provider credentials recovered from cracked dumps."),
		stuffAttempts:  r.Counter("tripwire_attacker_stuffing_attempts_total", "Credential-stuffing login attempts against the provider."),
		stuffSuccesses: r.Counter("tripwire_attacker_stuffing_successes_total", "Credential-stuffing logins that succeeded."),
		resales:        r.Counter("tripwire_attacker_resales_total", "Cracked credential lists resold on underground markets."),
		spamTakedowns:  r.Counter("tripwire_attacker_spam_runs_total", "Accounts burned by attacker spam campaigns."),
		takeovers:      r.Counter("tripwire_attacker_takeovers_total", "Accounts hijacked (password changed, forwarding stripped)."),
		credsAbandoned: r.Counter("tripwire_attacker_creds_abandoned_total", "Credentials dropped after persistent login failure."),
	}
}

func (m *Metrics) attempt(ok bool) {
	if m == nil {
		return
	}
	m.stuffAttempts.Inc()
	if ok {
		m.stuffSuccesses.Inc()
	}
}
