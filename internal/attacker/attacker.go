package attacker

import (
	"math/rand"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tripwire/internal/emailprovider"
	"tripwire/internal/identity"
	"tripwire/internal/simclock"
	"tripwire/internal/webgen"
	"tripwire/internal/xrand"
)

// RNG stream tags for per-event derivation (see xrand.Mix): every random
// decision the campaign makes is a pure function of (Seed, event seq,
// stream), so concurrently executed events cannot perturb each other.
const (
	streamCrack  = 11
	streamResale = 12
)

// Profile is an attacker's per-account access pattern. Table 3 of the paper
// shows the full spread: single checks, slow recurring observation, and
// heavy scraping with bursts.
type Profile int

const (
	// ProfileOneShot verifies the credential once and never returns.
	ProfileOneShot Profile = iota
	// ProfileFewChecks logs in a handful of times over weeks.
	ProfileFewChecks
	// ProfileScraper siphons mail on a recurring cadence for months.
	ProfileScraper
	// ProfileBurstyMulti scrapes recurringly and sometimes fans a burst of
	// logins across many distinct proxies within minutes (§6.4.2: 46
	// distinct IPs over 10 minutes in the peak case).
	ProfileBurstyMulti
	// ProfileBurstySingle hammers the account dozens of times from one IP
	// within seconds, then revisits.
	ProfileBurstySingle
)

// String names the profile.
func (p Profile) String() string {
	switch p {
	case ProfileOneShot:
		return "one-shot"
	case ProfileFewChecks:
		return "few-checks"
	case ProfileScraper:
		return "scraper"
	case ProfileBurstyMulti:
		return "bursty-multi-ip"
	case ProfileBurstySingle:
		return "bursty-single-ip"
	default:
		return "Profile(?)"
	}
}

// CampaignConfig tunes the attacker.
type CampaignConfig struct {
	Seed int64
	// CrackDelay maps password-storage policy to how long after exfil the
	// dictionary run produces usable credentials. Plaintext and reversible
	// dumps are usable immediately; salted slow hashes take longest.
	CrackDelayWeak   time.Duration
	CrackDelayStrong time.Duration
	// FirstUseDelay bounds the jitter between credentials becoming usable
	// and the first stuffing attempt.
	FirstUseDelayMin, FirstUseDelayMax time.Duration
	// Align coarsens attacker scheduling to this grain: every campaign
	// event time is rounded *up* to a multiple of Align, so independent
	// accounts' visits collide on shared timestamps and the epoch-parallel
	// timeline engine gets frontiers worth parallelizing instead of
	// singleton epochs. Zero disables alignment (every event keeps its
	// exact jittered time). Rounding is ceiling-only so an aligned event
	// never fires before the delay the model drew.
	Align time.Duration
	// AlignMax, when greater than Align, enables adaptive epoch widening:
	// the campaign watches the shape of executed epochs (via
	// Campaign.TuneEpoch, wired to simclock.Epochs.Tune) and doubles its
	// scheduling grain — up to AlignMax — while keyed epochs stay narrower
	// than AlignTargetWidth, narrowing back toward Align when they
	// overshoot. The controller consumes only schedule-derived statistics,
	// so the adaptive grain trajectory is identical at every worker count;
	// AlignMax == Align (or zero) freezes the grain and is the determinism
	// oracle for tests. Zero disables widening.
	AlignMax time.Duration
	// AlignTargetWidth is the keyed-epoch width the adaptive controller
	// steers toward. Zero selects DefaultAlignTargetWidth.
	AlignTargetWidth int
	// End stops all scheduling; recurrences are not booked past it.
	End time.Time
	// SpamProb is the per-account probability the attacker eventually
	// sends spam through it (leading to provider deactivation).
	SpamProb float64
	// TakeoverProb is the per-account probability the attacker changes the
	// password and strips forwarding (account g2 in the paper).
	TakeoverProb float64
	// CheckFraction is the share of recovered provider credentials the
	// attacker actually tests. 1 (or 0, the zero value) tests everything;
	// lower values model the paper's §7.3 evasion strategy: "the odds of
	// detection are inversely proportional to the percentage of email
	// accounts tested."
	CheckFraction float64

	// ResaleProb is the probability a cracked credential list is later
	// sold on an underground market, triggering a second stuffing wave by
	// the buyer (paper: bitcointalk's 2015 dump was "reportedly sold
	// online in 2016"; §6.4.4 suggests attackers stockpile accounts "for
	// later use or sale").
	ResaleProb float64
	// ResaleDelayMin/Max bound how long after cracking the sale happens.
	ResaleDelayMin, ResaleDelayMax time.Duration
}

// DefaultCampaignConfig returns paper-shaped timings: the observed gap
// between registration and first access ("Until" in Table 3) ranged from
// days to over a year.
func DefaultCampaignConfig(end time.Time) CampaignConfig {
	return CampaignConfig{
		Seed:             7,
		CrackDelayWeak:   7 * 24 * time.Hour,
		CrackDelayStrong: 45 * 24 * time.Hour,
		FirstUseDelayMin: 24 * time.Hour,
		FirstUseDelayMax: 45 * 24 * time.Hour,
		Align:            time.Hour,
		End:              end,
		SpamProb:         0.45,
		TakeoverProb:     0.08,
		ResaleProb:       0.15,
		ResaleDelayMin:   120 * 24 * time.Hour,
		ResaleDelayMax:   330 * 24 * time.Hour,
	}
}

// Campaign drives breaches end to end: exfiltrate a site's account
// database, crack it, and stuff recovered provider credentials via the
// botnet, on the virtual-time schedule.
//
// Every campaign event is keyed for the epoch-parallel timeline engine:
// breach/crack/resale events carry the domain's conflict key, per-account
// stuffing visits carry the account's. Randomness never flows through a
// shared sequential RNG — crack and resale events derive theirs from
// (Seed, event seq), and each account carries a private RNG seeded at
// scheduling time — so executing independent keys concurrently reproduces
// the serial schedule bit for bit.
type Campaign struct {
	cfg      CampaignConfig
	sched    *simclock.Scheduler
	stuffer  *Stuffer
	cracker  *Cracker
	provider *emailprovider.Provider

	// grain is the current scheduling grain in nanoseconds. Handlers read
	// it concurrently inside epochs (align is called while scheduling
	// follow-ups); the adaptive controller writes it only between epochs,
	// on the driver goroutine.
	grain atomic.Int64
	// narrowStreak/wideStreak count consecutive keyed epochs outside the
	// target width band; driver-goroutine only.
	narrowStreak, wideStreak int

	mu sync.Mutex
	// breaches records exfil times per domain (ground truth for EXPERIMENTS).
	breaches map[string]time.Time
	dead     map[string]bool // accounts the attacker has abandoned
	resales  []string        // domains whose dumps were resold
	rev      uint64          // durable-state mutation counter (checkpoint cache key)

	// Metrics, when non-nil, receives campaign-progress observations.
	// Recording is atomic-only and draws no randomness.
	Metrics *Metrics
}

// NewCampaign assembles an attacker.
func NewCampaign(cfg CampaignConfig, sched *simclock.Scheduler, stuffer *Stuffer, provider *emailprovider.Provider) *Campaign {
	c := &Campaign{
		cfg:      cfg,
		sched:    sched,
		stuffer:  stuffer,
		cracker:  &Cracker{Words: identity.DictionaryWords()},
		provider: provider,
		breaches: make(map[string]time.Time),
		dead:     make(map[string]bool),
	}
	c.grain.Store(int64(cfg.Align))
	return c
}

// DefaultAlignTargetWidth is the keyed-epoch width the adaptive align
// controller steers toward when CampaignConfig.AlignTargetWidth is unset.
// Matching the 256 conflict-key shards keeps most shards populated per
// epoch without folding so much of the timeline together that epochs
// outgrow the worker pool's ability to hide straggler partitions.
const DefaultAlignTargetWidth = 256

// DefaultAlignMax is the grain cap callers conventionally pair with
// adaptive widening (sim.Config.TimelineAdaptiveAlign uses it). Two weeks
// keeps even the widest grain far below crack/resale delays, so widening
// redistributes events within the stuffing phase rather than deforming the
// campaign's macro timeline.
const DefaultAlignMax = 14 * 24 * time.Hour

// CurrentAlign returns the grain the campaign is currently scheduling on
// (equal to cfg.Align unless adaptive widening moved it).
func (c *Campaign) CurrentAlign() time.Duration {
	return time.Duration(c.grain.Load())
}

// TuneEpoch is the adaptive widening controller; wire it to
// simclock.Epochs.Tune. It inspects the deterministic shape of each
// executed epoch and doubles the scheduling grain (capped at AlignMax)
// after two consecutive keyed epochs narrower than half the target width,
// halving it (floored at Align) after two consecutive epochs more than
// twice the target. Epochs without keyed events (crawl waves, control
// events) say nothing about stuffing density and are ignored.
//
// Determinism: the inputs (Width, Keyed) derive purely from the schedule,
// the update runs between epochs on the driver goroutine, and handlers
// only observe the grain through align — so every worker count sees the
// identical grain trajectory. With AlignMax unset (or == Align) this is a
// no-op and the campaign behaves exactly as the fixed-grain oracle.
func (c *Campaign) TuneEpoch(st simclock.EpochStats) {
	if c.cfg.AlignMax <= c.cfg.Align || c.cfg.Align <= 0 {
		return
	}
	if st.Keyed == 0 {
		return
	}
	target := c.cfg.AlignTargetWidth
	if target <= 0 {
		target = DefaultAlignTargetWidth
	}
	cur := time.Duration(c.grain.Load())
	switch {
	case st.Width < target/2 && cur < c.cfg.AlignMax:
		c.narrowStreak++
		c.wideStreak = 0
		if c.narrowStreak >= 2 {
			c.narrowStreak = 0
			next := cur * 2
			if next > c.cfg.AlignMax {
				next = c.cfg.AlignMax
			}
			c.grain.Store(int64(next))
		}
	case st.Width > target*2 && cur > c.cfg.Align:
		c.wideStreak++
		c.narrowStreak = 0
		if c.wideStreak >= 2 {
			c.wideStreak = 0
			next := cur / 2
			if next < c.cfg.Align {
				next = c.cfg.Align
			}
			c.grain.Store(int64(next))
		}
	default:
		c.narrowStreak, c.wideStreak = 0, 0
	}
}

// Breaches returns ground-truth exfil times by domain.
func (c *Campaign) Breaches() map[string]time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]time.Time, len(c.breaches))
	for d, t := range c.breaches {
		out[d] = t
	}
	return out
}

// align rounds t up to the campaign's current scheduling grain (no-op when
// Align is unset, and for times already on the grain). The grain is
// cfg.Align unless adaptive widening (AlignMax) has moved it.
func (c *Campaign) align(t time.Time) time.Time {
	a := time.Duration(c.grain.Load())
	if a <= 0 {
		return t
	}
	if tr := t.Truncate(a); !tr.Equal(t) {
		return tr.Add(a)
	}
	return t
}

// Breach schedules the compromise of domain at time when: the attacker
// exfiltrates the store's dump, cracks it per the site's storage policy,
// and begins stuffing recovered provider credentials.
func (c *Campaign) Breach(domain string, store *webgen.Store, when time.Time) {
	key := simclock.KeyFor(domain)
	c.sched.AtKeyed(c.align(when), key, "breach "+domain, func(x *simclock.Exec) {
		c.mu.Lock()
		c.breaches[domain] = x.Now()
		c.rev++
		c.mu.Unlock()
		if c.Metrics != nil {
			c.Metrics.breaches.Inc()
		}
		dump := store.Dump()
		delay := c.crackDelay(store.Policy())
		at := c.align(x.Now().Add(delay))
		x.AtKeyed(at, key, "crack "+domain, func(x *simclock.Exec) {
			rng := xrand.New(xrand.Mix(c.cfg.Seed, int64(x.Seq()), streamCrack))
			creds := c.cracker.Crack(dump)
			provider := FilterByDomain(creds, c.provider.Domain())
			if c.Metrics != nil {
				c.Metrics.credsCracked.Add(uint64(len(provider)))
			}
			for _, cred := range provider {
				if c.cfg.CheckFraction > 0 && c.cfg.CheckFraction < 1 && rng.Float64() >= c.cfg.CheckFraction {
					continue // evasive attacker: sample, don't sweep
				}
				c.scheduleStuffing(x, rng, cred)
			}
			c.maybeResell(x, rng, domain, provider)
		})
	})
}

// maybeResell lists the cracked credential set on an underground market;
// months later a buyer runs a second stuffing wave with fresh behaviour
// profiles against whatever accounts are still alive.
func (c *Campaign) maybeResell(x *simclock.Exec, rng *rand.Rand, domain string, creds []Credential) {
	if len(creds) == 0 || c.cfg.ResaleProb <= 0 || rng.Float64() >= c.cfg.ResaleProb {
		return
	}
	spread := c.cfg.ResaleDelayMax - c.cfg.ResaleDelayMin
	delay := c.cfg.ResaleDelayMin
	if spread > 0 {
		delay += time.Duration(rng.Int63n(int64(spread)))
	}
	at := c.align(x.Now().Add(delay))
	key := simclock.KeyFor(domain)
	x.AtKeyed(at, key, "resale of "+domain+" dump", func(x *simclock.Exec) {
		now := x.Now()
		if now.After(c.cfg.End) {
			return
		}
		c.mu.Lock()
		c.resales = append(c.resales, domain)
		c.rev++
		c.mu.Unlock()
		if c.Metrics != nil {
			c.Metrics.resales.Inc()
		}
		rng := xrand.New(xrand.Mix(c.cfg.Seed, int64(x.Seq()), streamResale))
		for _, cred := range creds {
			c.scheduleStuffing(x, rng, cred)
		}
	})
}

// Resales lists domains whose dumps were resold (ground truth for tests),
// sorted so the listing is independent of same-epoch resale interleaving.
func (c *Campaign) Resales() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.resales))
	copy(out, c.resales)
	sort.Strings(out)
	return out
}

func (c *Campaign) crackDelay(p webgen.StoragePolicy) time.Duration {
	switch p {
	case webgen.StorePlaintext, webgen.StoreReversible:
		return time.Hour // read straight out of the dump
	case webgen.StoreWeakHash:
		return c.cfg.CrackDelayWeak
	case webgen.StoreStrongHash:
		return c.cfg.CrackDelayStrong
	default:
		return c.cfg.CrackDelayWeak
	}
}

// scheduleStuffing samples a behaviour profile for the credential and books
// its first access. rng is the scheduling event's private RNG; the account
// itself gets an independent child RNG so its later visits draw the same
// numbers no matter what other accounts do in between.
func (c *Campaign) scheduleStuffing(x *simclock.Exec, rng *rand.Rand, cred Credential) {
	profile := sampleProfile(rng)
	spam := rng.Float64() < c.cfg.SpamProb
	takeover := rng.Float64() < c.cfg.TakeoverProb
	spamAfter := 3 + rng.Intn(40)
	first := c.cfg.FirstUseDelayMin
	if spread := c.cfg.FirstUseDelayMax - c.cfg.FirstUseDelayMin; spread > 0 {
		first += time.Duration(rng.Int63n(int64(spread)))
	}

	state := &accountState{
		cred:         cred,
		key:          simclock.KeyFor(cred.Email),
		profile:      profile,
		willSpam:     spam,
		willTakeover: takeover,
		spamAfter:    spamAfter,
		rng:          xrand.New(rng.Int63()),
	}
	at := c.align(x.Now().Add(first))
	x.AtKeyed(at, state.key, "first-use "+cred.Email, func(x *simclock.Exec) {
		c.access(state, x)
	})
}

func sampleProfile(rng *rand.Rand) Profile {
	r := rng.Float64()
	switch {
	case r < 0.15:
		return ProfileOneShot
	case r < 0.42:
		return ProfileFewChecks
	case r < 0.74:
		return ProfileScraper
	case r < 0.92:
		return ProfileBurstyMulti
	default:
		return ProfileBurstySingle
	}
}

// accountState is touched only by the account's own keyed events, which
// the timeline engine serializes, so no lock guards it — including rng,
// the account's private randomness stream.
type accountState struct {
	cred         Credential
	key          uint64
	rng          *rand.Rand
	profile      Profile
	logins       int
	failures     int
	willSpam     bool
	willTakeover bool
	spamAfter    int
	tookOver     bool
}

// access performs one visit per the profile, then books the next.
func (c *Campaign) access(st *accountState, x *simclock.Exec) {
	c.mu.Lock()
	if c.dead[st.cred.Email] {
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()

	siphon := st.profile == ProfileScraper || st.profile == ProfileBurstyMulti
	switch st.profile {
	case ProfileBurstyMulti:
		// Occasionally fan out across many proxies within ~10 minutes.
		// Tight retry loops on independent, flaky workers: "the systems
		// used to login to accounts are very loosely coupled and failure
		// is common" (§6.4.2).
		if st.rng.Float64() < 0.16 {
			n := 5 + st.rng.Intn(42)
			for i := 0; i < n; i++ {
				ok, _ := c.stuffOnce(st, siphon)
				if ok {
					st.logins++
				} else {
					st.failures++
				}
			}
			c.afterLogins(st)
			c.scheduleNext(st, x)
			return
		}
	case ProfileBurstySingle:
		// Each burst hammers the account from one worker IP "dozens or
		// hundreds of times within a few seconds" (§6.4.2); the worker —
		// and hence the IP — changes between bursts, bounding per-IP reuse
		// near the paper's observed maximum of 58.
		burstIP := c.stuffer.LeaseIP(st.cred.Email)
		n := 10 + st.rng.Intn(35)
		for i := 0; i < n; i++ {
			if c.stuffer.TryLoginFrom(burstIP, st.cred, false) {
				st.logins++
			} else {
				st.failures++
			}
		}
		c.afterLogins(st)
		c.scheduleNext(st, x)
		return
	}
	ok, _ := c.stuffOnce(st, siphon)
	if ok {
		st.logins++
	} else {
		st.failures++
	}
	c.afterLogins(st)
	c.scheduleNext(st, x)
}

func (c *Campaign) stuffOnce(st *accountState, siphon bool) (bool, netip.Addr) {
	cred := st.cred
	if st.tookOver {
		cred.Password = takeoverPassword(cred.Email)
	}
	return c.stuffer.TryLogin(cred, siphon)
}

// afterLogins applies post-access abuse: takeover, spam (which gets the
// account deactivated by the provider).
func (c *Campaign) afterLogins(st *accountState) {
	if st.logins == 0 {
		return
	}
	if st.willTakeover && !st.tookOver && st.logins >= 3 {
		c.provider.ChangePassword(st.cred.Email, takeoverPassword(st.cred.Email))
		c.provider.RemoveForwarding(st.cred.Email)
		st.tookOver = true
		if c.Metrics != nil {
			c.Metrics.takeovers.Inc()
		}
	}
	if st.willSpam && st.logins >= st.spamAfter {
		c.provider.ReportSpam(st.cred.Email, 100+st.rng.Intn(900))
		c.mu.Lock()
		c.dead[st.cred.Email] = true
		c.rev++
		c.mu.Unlock()
		if c.Metrics != nil {
			c.Metrics.spamTakedowns.Inc()
		}
	}
}

// scheduleNext books the account's next visit per profile, abandoning
// accounts whose value is exhausted or whose logins keep failing.
func (c *Campaign) scheduleNext(st *accountState, x *simclock.Exec) {
	if st.failures >= 30 && st.logins == 0 {
		if c.Metrics != nil {
			c.Metrics.credsAbandoned.Inc()
		}
		return // credential never worked; drop it
	}
	var gap time.Duration
	switch st.profile {
	case ProfileOneShot:
		return
	case ProfileFewChecks:
		if st.logins+st.failures >= 2+st.rng.Intn(8) {
			return
		}
		gap = time.Duration(3+st.rng.Intn(40)) * 24 * time.Hour
	case ProfileScraper:
		gap = time.Duration(2+st.rng.Intn(9)) * 24 * time.Hour
	case ProfileBurstyMulti:
		gap = time.Duration(2+st.rng.Intn(11)) * 24 * time.Hour
	case ProfileBurstySingle:
		gap = time.Duration(20+st.rng.Intn(41)) * 24 * time.Hour
	}
	next := c.align(x.Now().Add(gap))
	if next.After(c.cfg.End) {
		return
	}
	x.AtKeyed(next, st.key, "revisit "+st.cred.Email, func(x *simclock.Exec) {
		c.access(st, x)
	})
}

// takeoverPassword is the deterministic password an attacker sets after
// hijacking an account.
func takeoverPassword(email string) string { return "hijacked-" + email }
