package attacker

import (
	"math/rand"
	"net/netip"
	"sync"
	"time"

	"tripwire/internal/emailprovider"
	"tripwire/internal/identity"
	"tripwire/internal/simclock"
	"tripwire/internal/webgen"
)

// Profile is an attacker's per-account access pattern. Table 3 of the paper
// shows the full spread: single checks, slow recurring observation, and
// heavy scraping with bursts.
type Profile int

const (
	// ProfileOneShot verifies the credential once and never returns.
	ProfileOneShot Profile = iota
	// ProfileFewChecks logs in a handful of times over weeks.
	ProfileFewChecks
	// ProfileScraper siphons mail on a recurring cadence for months.
	ProfileScraper
	// ProfileBurstyMulti scrapes recurringly and sometimes fans a burst of
	// logins across many distinct proxies within minutes (§6.4.2: 46
	// distinct IPs over 10 minutes in the peak case).
	ProfileBurstyMulti
	// ProfileBurstySingle hammers the account dozens of times from one IP
	// within seconds, then revisits.
	ProfileBurstySingle
)

// String names the profile.
func (p Profile) String() string {
	switch p {
	case ProfileOneShot:
		return "one-shot"
	case ProfileFewChecks:
		return "few-checks"
	case ProfileScraper:
		return "scraper"
	case ProfileBurstyMulti:
		return "bursty-multi-ip"
	case ProfileBurstySingle:
		return "bursty-single-ip"
	default:
		return "Profile(?)"
	}
}

// CampaignConfig tunes the attacker.
type CampaignConfig struct {
	Seed int64
	// CrackDelay maps password-storage policy to how long after exfil the
	// dictionary run produces usable credentials. Plaintext and reversible
	// dumps are usable immediately; salted slow hashes take longest.
	CrackDelayWeak   time.Duration
	CrackDelayStrong time.Duration
	// FirstUseDelay bounds the jitter between credentials becoming usable
	// and the first stuffing attempt.
	FirstUseDelayMin, FirstUseDelayMax time.Duration
	// End stops all scheduling; recurrences are not booked past it.
	End time.Time
	// SpamProb is the per-account probability the attacker eventually
	// sends spam through it (leading to provider deactivation).
	SpamProb float64
	// TakeoverProb is the per-account probability the attacker changes the
	// password and strips forwarding (account g2 in the paper).
	TakeoverProb float64
	// CheckFraction is the share of recovered provider credentials the
	// attacker actually tests. 1 (or 0, the zero value) tests everything;
	// lower values model the paper's §7.3 evasion strategy: "the odds of
	// detection are inversely proportional to the percentage of email
	// accounts tested."
	CheckFraction float64

	// ResaleProb is the probability a cracked credential list is later
	// sold on an underground market, triggering a second stuffing wave by
	// the buyer (paper: bitcointalk's 2015 dump was "reportedly sold
	// online in 2016"; §6.4.4 suggests attackers stockpile accounts "for
	// later use or sale").
	ResaleProb float64
	// ResaleDelayMin/Max bound how long after cracking the sale happens.
	ResaleDelayMin, ResaleDelayMax time.Duration
}

// DefaultCampaignConfig returns paper-shaped timings: the observed gap
// between registration and first access ("Until" in Table 3) ranged from
// days to over a year.
func DefaultCampaignConfig(end time.Time) CampaignConfig {
	return CampaignConfig{
		Seed:             7,
		CrackDelayWeak:   7 * 24 * time.Hour,
		CrackDelayStrong: 45 * 24 * time.Hour,
		FirstUseDelayMin: 24 * time.Hour,
		FirstUseDelayMax: 45 * 24 * time.Hour,
		End:              end,
		SpamProb:         0.45,
		TakeoverProb:     0.08,
		ResaleProb:       0.15,
		ResaleDelayMin:   120 * 24 * time.Hour,
		ResaleDelayMax:   330 * 24 * time.Hour,
	}
}

// Campaign drives breaches end to end: exfiltrate a site's account
// database, crack it, and stuff recovered provider credentials via the
// botnet, on the virtual-time schedule.
type Campaign struct {
	cfg      CampaignConfig
	sched    *simclock.Scheduler
	stuffer  *Stuffer
	cracker  *Cracker
	provider *emailprovider.Provider

	mu  sync.Mutex
	rng *rand.Rand
	// breaches records exfil times per domain (ground truth for EXPERIMENTS).
	breaches map[string]time.Time
	dead     map[string]bool // accounts the attacker has abandoned
	resales  []string        // domains whose dumps were resold

	// Metrics, when non-nil, receives campaign-progress observations.
	// Recording is atomic-only and draws no randomness.
	Metrics *Metrics
}

// NewCampaign assembles an attacker.
func NewCampaign(cfg CampaignConfig, sched *simclock.Scheduler, stuffer *Stuffer, provider *emailprovider.Provider) *Campaign {
	return &Campaign{
		cfg:      cfg,
		sched:    sched,
		stuffer:  stuffer,
		cracker:  &Cracker{Words: identity.DictionaryWords()},
		provider: provider,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		breaches: make(map[string]time.Time),
		dead:     make(map[string]bool),
	}
}

// Breaches returns ground-truth exfil times by domain.
func (c *Campaign) Breaches() map[string]time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]time.Time, len(c.breaches))
	for d, t := range c.breaches {
		out[d] = t
	}
	return out
}

// Breach schedules the compromise of domain at time when: the attacker
// exfiltrates the store's dump, cracks it per the site's storage policy,
// and begins stuffing recovered provider credentials.
func (c *Campaign) Breach(domain string, store *webgen.Store, when time.Time) {
	c.sched.At(when, "breach "+domain, func(now time.Time) {
		c.mu.Lock()
		c.breaches[domain] = now
		c.mu.Unlock()
		if c.Metrics != nil {
			c.Metrics.breaches.Inc()
		}
		dump := store.Dump()
		delay := c.crackDelay(store.Policy())
		c.sched.After(delay, "crack "+domain, func(now time.Time) {
			creds := c.cracker.Crack(dump)
			provider := FilterByDomain(creds, c.provider.Domain())
			if c.Metrics != nil {
				c.Metrics.credsCracked.Add(uint64(len(provider)))
			}
			for _, cred := range provider {
				if c.cfg.CheckFraction > 0 && c.cfg.CheckFraction < 1 && !c.roll(c.cfg.CheckFraction) {
					continue // evasive attacker: sample, don't sweep
				}
				c.scheduleStuffing(cred)
			}
			c.maybeResell(domain, provider)
		})
	})
}

// maybeResell lists the cracked credential set on an underground market;
// months later a buyer runs a second stuffing wave with fresh behaviour
// profiles against whatever accounts are still alive.
func (c *Campaign) maybeResell(domain string, creds []Credential) {
	if len(creds) == 0 || c.cfg.ResaleProb <= 0 || !c.roll(c.cfg.ResaleProb) {
		return
	}
	spread := c.cfg.ResaleDelayMax - c.cfg.ResaleDelayMin
	delay := c.cfg.ResaleDelayMin
	if spread > 0 {
		c.mu.Lock()
		delay += time.Duration(c.rng.Int63n(int64(spread)))
		c.mu.Unlock()
	}
	c.sched.After(delay, "resale of "+domain+" dump", func(now time.Time) {
		if now.After(c.cfg.End) {
			return
		}
		c.mu.Lock()
		c.resales = append(c.resales, domain)
		c.mu.Unlock()
		if c.Metrics != nil {
			c.Metrics.resales.Inc()
		}
		for _, cred := range creds {
			c.scheduleStuffing(cred)
		}
	})
}

// Resales lists domains whose dumps were resold (ground truth for tests).
func (c *Campaign) Resales() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.resales))
	copy(out, c.resales)
	return out
}

func (c *Campaign) crackDelay(p webgen.StoragePolicy) time.Duration {
	switch p {
	case webgen.StorePlaintext, webgen.StoreReversible:
		return time.Hour // read straight out of the dump
	case webgen.StoreWeakHash:
		return c.cfg.CrackDelayWeak
	case webgen.StoreStrongHash:
		return c.cfg.CrackDelayStrong
	default:
		return c.cfg.CrackDelayWeak
	}
}

// scheduleStuffing samples a behaviour profile for the credential and books
// its first access.
func (c *Campaign) scheduleStuffing(cred Credential) {
	c.mu.Lock()
	profile := c.sampleProfile()
	spam := c.rng.Float64() < c.cfg.SpamProb
	takeover := c.rng.Float64() < c.cfg.TakeoverProb
	spamAfter := 3 + c.rng.Intn(40)
	first := c.cfg.FirstUseDelayMin + time.Duration(c.rng.Int63n(int64(c.cfg.FirstUseDelayMax-c.cfg.FirstUseDelayMin)))
	c.mu.Unlock()

	state := &accountState{cred: cred, profile: profile, willSpam: spam, willTakeover: takeover, spamAfter: spamAfter}
	c.sched.After(first, "first-use "+cred.Email, func(now time.Time) {
		c.access(state, now)
	})
}

func (c *Campaign) sampleProfile() Profile {
	r := c.rng.Float64()
	switch {
	case r < 0.15:
		return ProfileOneShot
	case r < 0.42:
		return ProfileFewChecks
	case r < 0.74:
		return ProfileScraper
	case r < 0.92:
		return ProfileBurstyMulti
	default:
		return ProfileBurstySingle
	}
}

type accountState struct {
	cred         Credential
	profile      Profile
	logins       int
	failures     int
	willSpam     bool
	willTakeover bool
	spamAfter    int
	tookOver     bool
}

// access performs one visit per the profile, then books the next.
func (c *Campaign) access(st *accountState, now time.Time) {
	c.mu.Lock()
	if c.dead[st.cred.Email] {
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()

	siphon := st.profile == ProfileScraper || st.profile == ProfileBurstyMulti
	switch st.profile {
	case ProfileBurstyMulti:
		// Occasionally fan out across many proxies within ~10 minutes.
		// Tight retry loops on independent, flaky workers: "the systems
		// used to login to accounts are very loosely coupled and failure
		// is common" (§6.4.2).
		if c.roll(0.16) {
			n := 5 + c.intn(42)
			for i := 0; i < n; i++ {
				ok, _ := c.stuffOnce(st, siphon)
				if ok {
					st.logins++
				} else {
					st.failures++
				}
			}
			c.afterLogins(st, now)
			c.scheduleNext(st, now)
			return
		}
	case ProfileBurstySingle:
		// Each burst hammers the account from one worker IP "dozens or
		// hundreds of times within a few seconds" (§6.4.2); the worker —
		// and hence the IP — changes between bursts, bounding per-IP reuse
		// near the paper's observed maximum of 58.
		burstIP := c.stuffer.Pool.Next()
		n := 10 + c.intn(35)
		for i := 0; i < n; i++ {
			if c.stuffer.TryLoginFrom(burstIP, st.cred, false) {
				st.logins++
			} else {
				st.failures++
			}
		}
		c.afterLogins(st, now)
		c.scheduleNext(st, now)
		return
	}
	ok, _ := c.stuffOnce(st, siphon)
	if ok {
		st.logins++
	} else {
		st.failures++
	}
	c.afterLogins(st, now)
	c.scheduleNext(st, now)
}

func (c *Campaign) stuffOnce(st *accountState, siphon bool) (bool, netip.Addr) {
	cred := st.cred
	if st.tookOver {
		cred.Password = takeoverPassword(cred.Email)
	}
	return c.stuffer.TryLogin(cred, siphon)
}

// afterLogins applies post-access abuse: takeover, spam (which gets the
// account deactivated by the provider).
func (c *Campaign) afterLogins(st *accountState, now time.Time) {
	if st.logins == 0 {
		return
	}
	if st.willTakeover && !st.tookOver && st.logins >= 3 {
		c.provider.ChangePassword(st.cred.Email, takeoverPassword(st.cred.Email))
		c.provider.RemoveForwarding(st.cred.Email)
		st.tookOver = true
		if c.Metrics != nil {
			c.Metrics.takeovers.Inc()
		}
	}
	if st.willSpam && st.logins >= st.spamAfter {
		c.provider.ReportSpam(st.cred.Email, 100+c.intn(900))
		c.mu.Lock()
		c.dead[st.cred.Email] = true
		c.mu.Unlock()
		if c.Metrics != nil {
			c.Metrics.spamTakedowns.Inc()
		}
	}
}

// scheduleNext books the account's next visit per profile, abandoning
// accounts whose value is exhausted or whose logins keep failing.
func (c *Campaign) scheduleNext(st *accountState, now time.Time) {
	if st.failures >= 30 && st.logins == 0 {
		if c.Metrics != nil {
			c.Metrics.credsAbandoned.Inc()
		}
		return // credential never worked; drop it
	}
	var gap time.Duration
	switch st.profile {
	case ProfileOneShot:
		return
	case ProfileFewChecks:
		if st.logins+st.failures >= 2+c.intn(8) {
			return
		}
		gap = time.Duration(3+c.intn(40)) * 24 * time.Hour
	case ProfileScraper:
		gap = time.Duration(2+c.intn(9)) * 24 * time.Hour
	case ProfileBurstyMulti:
		gap = time.Duration(2+c.intn(11)) * 24 * time.Hour
	case ProfileBurstySingle:
		gap = time.Duration(20+c.intn(41)) * 24 * time.Hour
	}
	next := now.Add(gap)
	if next.After(c.cfg.End) {
		return
	}
	c.sched.At(next, "revisit "+st.cred.Email, func(t time.Time) { c.access(st, t) })
}

func (c *Campaign) roll(p float64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rng.Float64() < p
}

func (c *Campaign) intn(n int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rng.Intn(n)
}

// takeoverPassword is the deterministic password an attacker sets after
// hijacking an account.
func takeoverPassword(email string) string { return "hijacked-" + email }
