package attacker

import (
	"strings"
	"testing"
	"time"

	"tripwire/internal/emailprovider"
	"tripwire/internal/geo"
	"tripwire/internal/identity"
	"tripwire/internal/imap"
	"tripwire/internal/simclock"
	"tripwire/internal/webgen"
)

// resaleFixture runs one plaintext breach with the given resale settings
// and returns the campaign, provider, and breach time.
func resaleFixture(t *testing.T, resaleProb float64) (*Campaign, *emailprovider.Provider, time.Time, time.Time) {
	t.Helper()
	start := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	end := start.Add(700 * 24 * time.Hour)
	clock := simclock.New(start)
	sched := simclock.NewScheduler(clock)
	provider := emailprovider.New("bigmail.test")
	provider.Now = clock.Now
	pool := NewProxyPool(geo.NewSpace(), 41, 0.1)
	stuffer := NewStuffer(imap.NewServer(provider), pool, clock.Now)
	cfg := DefaultCampaignConfig(end)
	cfg.SpamProb = 0
	cfg.TakeoverProb = 0
	cfg.ResaleProb = resaleProb
	cfg.ResaleDelayMin = 200 * 24 * time.Hour
	cfg.ResaleDelayMax = 201 * 24 * time.Hour
	camp := NewCampaign(cfg, sched, stuffer, provider)

	gen := identity.NewGenerator("bigmail.test", 43)
	store := webgen.NewStore(webgen.StorePlaintext)
	for i := 0; i < 6; i++ {
		id := gen.New(identity.Easy)
		if err := provider.CreateAccount(id.Email, id.FullName(), id.Password); err != nil {
			t.Fatal(err)
		}
		local := strings.Split(id.Email, "@")[0]
		store.Create(local, id.Email, id.Password, "", start)
	}
	breachAt := start.Add(24 * time.Hour)
	camp.Breach("resalesite.test", store, breachAt)
	sched.RunUntil(end)
	return camp, provider, breachAt, end
}

func TestResaleProducesSecondWave(t *testing.T) {
	camp, provider, breachAt, _ := resaleFixture(t, 1.0)
	if got := camp.Resales(); len(got) != 1 || got[0] != "resalesite.test" {
		t.Fatalf("Resales = %v", got)
	}
	// Logins must appear both before and after the resale moment.
	resaleAt := breachAt.Add(time.Hour /*crack*/ + 200*24*time.Hour)
	var before, after int
	for _, ev := range provider.AllLogins() {
		if ev.Time.Before(resaleAt) {
			before++
		} else {
			after++
		}
	}
	if before == 0 {
		t.Fatal("no first-wave logins")
	}
	if after == 0 {
		t.Fatal("no second-wave logins after the resale (paper: bitcointalk dump resold a year later)")
	}
}

func TestNoResaleNoSecondWave(t *testing.T) {
	camp, _, _, _ := resaleFixture(t, 0)
	if got := camp.Resales(); len(got) != 0 {
		t.Fatalf("Resales = %v with ResaleProb 0", got)
	}
}
