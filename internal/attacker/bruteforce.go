package attacker

import (
	"net/url"
	"strings"

	"tripwire/internal/browser"
	"tripwire/internal/htmldom"
)

// BruteForcer attacks a site's own login endpoint, without any database
// breach: it harvests usernames from the site's public member directory and
// guesses dictionary passwords over HTTP. The paper's §6.3.5 discusses this
// vector with sites E and F ("pages on their sites list usernames, and the
// company asked if these could have been used by an attacker to brute-force
// guess passwords ... if indeed this is what occurred, then it represents a
// compromise consistent with Tripwire's goals") and §4.4 declares it in
// scope: Tripwire should still detect it.
type BruteForcer struct {
	// Browser carries the attacker's HTTP session to the site.
	Browser *browser.Client
	// Words is the guessing dictionary of seven-letter base words; the
	// candidate set is Word+digit, most common shapes first.
	Words []string
	// MaxGuessesPerAccount bounds the online guessing budget. Sites with
	// login rate limiting shut the attack down long before any realistic
	// budget is spent.
	MaxGuessesPerAccount int
}

// HarvestUsernames scrapes the site's public member directory.
func (bf *BruteForcer) HarvestUsernames(host string) []string {
	page, err := bf.Browser.Get("http://" + host + "/members")
	if err != nil || !page.OK() {
		return nil
	}
	var users []string
	page.DOM.Walk(func(n *htmldom.Node) bool {
		if n.Tag == "li" && strings.Contains(n.AttrOr("class", ""), "member") {
			if u := n.Text(); u != "" {
				users = append(users, u)
			}
		}
		return true
	})
	return users
}

// candidates enumerates guesses in dictionary order.
func (bf *BruteForcer) candidates() []string {
	out := make([]string, 0, len(bf.Words)*10)
	for _, w := range bf.Words {
		cap := strings.ToUpper(w[:1]) + w[1:]
		for d := '0'; d <= '9'; d++ {
			out = append(out, cap+string(d))
		}
	}
	if bf.MaxGuessesPerAccount > 0 && len(out) > bf.MaxGuessesPerAccount {
		out = out[:bf.MaxGuessesPerAccount]
	}
	return out
}

// Attack brute-forces every harvested account at host and returns the
// credentials recovered, including the email address scraped off the
// post-login account page — the pivot the password-reuse attack needs.
// Each guess is a real POST to the site's login endpoint; sites with rate
// limiting throttle the account after a handful of failures and the
// attacker moves on.
func (bf *BruteForcer) Attack(host string) []Credential {
	users := bf.HarvestUsernames(host)
	cands := bf.candidates()
	var out []Credential
	for _, user := range users {
		cred, ok := bf.guessAccount(host, user, cands)
		if ok {
			out = append(out, cred)
		}
	}
	return out
}

func (bf *BruteForcer) guessAccount(host, user string, cands []string) (Credential, bool) {
	for _, pw := range cands {
		vals := url.Values{"login": {user}, "password": {pw}}
		page, err := bf.Browser.Post("http://"+host+"/login", vals)
		if err != nil {
			return Credential{}, false
		}
		switch {
		case page.StatusCode == 429:
			// The site throttled the account: the online attack is dead.
			return Credential{}, false
		case page.OK():
			email := scrapeEmail(page)
			return Credential{Username: user, Email: email, Password: pw}, true
		}
	}
	return Credential{}, false
}

// scrapeEmail pulls the address off the account overview page.
func scrapeEmail(page *browser.Page) string {
	var email string
	page.DOM.Walk(func(n *htmldom.Node) bool {
		if n.Tag == "p" && strings.Contains(n.AttrOr("class", ""), "account-email") {
			text := n.Text()
			for _, f := range strings.Fields(text) {
				if strings.Contains(f, "@") {
					email = f
				}
			}
			return false
		}
		return true
	})
	return email
}
