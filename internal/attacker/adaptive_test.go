package attacker

import (
	"testing"
	"time"

	"tripwire/internal/simclock"
)

// tuneCampaign builds a campaign shell for exercising the adaptive align
// controller; TuneEpoch touches only the config and the grain.
func tuneCampaign(align, alignMax time.Duration, target int) *Campaign {
	cfg := DefaultCampaignConfig(t0.Add(365 * 24 * time.Hour))
	cfg.Align = align
	cfg.AlignMax = alignMax
	cfg.AlignTargetWidth = target
	return NewCampaign(cfg, nil, nil, nil)
}

func keyedEpoch(width int) simclock.EpochStats {
	return simclock.EpochStats{Width: width, Keyed: width}
}

// TestTuneEpochOracle pins the determinism oracle: with AlignMax unset or
// equal to Align, TuneEpoch is a no-op and the grain never leaves Align.
func TestTuneEpochOracle(t *testing.T) {
	for _, alignMax := range []time.Duration{0, time.Hour} {
		c := tuneCampaign(time.Hour, alignMax, 0)
		for i := 0; i < 10; i++ {
			c.TuneEpoch(keyedEpoch(1))
			c.TuneEpoch(keyedEpoch(100000))
		}
		if got := c.CurrentAlign(); got != time.Hour {
			t.Fatalf("AlignMax=%v: grain moved to %v, want fixed %v", alignMax, got, time.Hour)
		}
	}
}

// TestTuneEpochWidensAndCaps drives consecutive narrow keyed epochs and
// asserts the grain doubles after every second one, saturating at AlignMax.
func TestTuneEpochWidensAndCaps(t *testing.T) {
	c := tuneCampaign(time.Hour, 16*time.Hour, 256)
	want := []time.Duration{
		time.Hour, 2 * time.Hour, // epochs 1,2: double after the 2nd
		2 * time.Hour, 4 * time.Hour,
		4 * time.Hour, 8 * time.Hour,
		8 * time.Hour, 16 * time.Hour,
		16 * time.Hour, 16 * time.Hour, // capped
	}
	for i, w := range want {
		c.TuneEpoch(keyedEpoch(10)) // well under target/2
		if got := c.CurrentAlign(); got != w {
			t.Fatalf("after narrow epoch %d: grain %v, want %v", i+1, got, w)
		}
	}
}

// TestTuneEpochNarrowsAndFloors drives over-wide epochs against a widened
// grain and asserts halving with the Align floor.
func TestTuneEpochNarrowsAndFloors(t *testing.T) {
	c := tuneCampaign(time.Hour, 16*time.Hour, 256)
	for i := 0; i < 4; i++ {
		c.TuneEpoch(keyedEpoch(10))
	}
	if got := c.CurrentAlign(); got != 4*time.Hour {
		t.Fatalf("setup widening: grain %v, want 4h", got)
	}
	want := []time.Duration{
		4 * time.Hour, 2 * time.Hour,
		2 * time.Hour, time.Hour,
		time.Hour, time.Hour, // floored at Align
	}
	for i, w := range want {
		c.TuneEpoch(keyedEpoch(600)) // over target*2
		if got := c.CurrentAlign(); got != w {
			t.Fatalf("after wide epoch %d: grain %v, want %v", i+1, got, w)
		}
	}
}

// TestTuneEpochStreaksAndSkips asserts in-band epochs reset the streaks
// and keyed-free epochs are ignored entirely, so a lone narrow epoch never
// moves the grain.
func TestTuneEpochStreaksAndSkips(t *testing.T) {
	c := tuneCampaign(time.Hour, 16*time.Hour, 256)
	c.TuneEpoch(keyedEpoch(10))
	c.TuneEpoch(keyedEpoch(300)) // in band: resets the narrow streak
	c.TuneEpoch(keyedEpoch(10))
	if got := c.CurrentAlign(); got != time.Hour {
		t.Fatalf("streak survived an in-band epoch: grain %v", got)
	}
	c.TuneEpoch(simclock.EpochStats{Width: 3, Keyed: 0}) // serial-only: ignored
	c.TuneEpoch(keyedEpoch(10))
	if got := c.CurrentAlign(); got != 2*time.Hour {
		t.Fatalf("keyed-free epoch broke the streak: grain %v, want 2h", got)
	}
}
