package attacker

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"tripwire/internal/snapshot"
)

// BreachState is one ground-truth exfil record.
type BreachState struct {
	Domain string
	At     time.Time
}

// DrawState is one account's deterministic draw counter.
type DrawState struct {
	Email string
	N     uint64
}

// CampaignState is the campaign's durable ground truth: breach times,
// abandoned accounts, and resold dumps, all sorted for deterministic
// export.
type CampaignState struct {
	Breaches []BreachState // sorted by domain
	Dead     []string      // sorted
	Resales  []string      // sorted
}

// StufferState is the botnet's durable state: the attacker-side attempt
// log in append order and the per-account draw counters that make every
// future probabilistic choice reproducible.
type StufferState struct {
	Records []LoginRecord
	Draws   []DrawState // sorted by email
}

// AttackerState bundles campaign and stuffer for one snapshot section.
type AttackerState struct {
	Campaign CampaignState
	Stuffer  StufferState
}

// StateRev returns the campaign's durable-state mutation counter: it moves
// whenever ExportState's result may have changed, so checkpoints can reuse
// a cached encoding while it holds still.
func (c *Campaign) StateRev() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rev
}

// StateRev returns the stuffer's durable-state mutation counter.
func (s *Stuffer) StateRev() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rev
}

// ExportState captures the campaign's ground truth.
func (c *Campaign) ExportState() CampaignState {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CampaignState{}
	for domain, at := range c.breaches {
		st.Breaches = append(st.Breaches, BreachState{Domain: domain, At: snapshot.CanonTime(at)})
	}
	sort.Slice(st.Breaches, func(i, j int) bool { return st.Breaches[i].Domain < st.Breaches[j].Domain })
	for email := range c.dead {
		st.Dead = append(st.Dead, email)
	}
	sort.Strings(st.Dead)
	st.Resales = append(st.Resales, c.resales...)
	sort.Strings(st.Resales)
	return st
}

// ExportState captures the stuffer's log and draw counters.
func (s *Stuffer) ExportState() StufferState {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := StufferState{}
	if len(s.records) > 0 {
		st.Records = make([]LoginRecord, len(s.records))
		copy(st.Records, s.records)
		for i := range st.Records {
			st.Records[i].Time = snapshot.CanonTime(st.Records[i].Time)
		}
	}
	for email, n := range s.draws {
		st.Draws = append(st.Draws, DrawState{Email: email, N: n})
	}
	sort.Slice(st.Draws, func(i, j int) bool { return st.Draws[i].Email < st.Draws[j].Email })
	return st
}

// EncodeAttackerState serializes the export into snapshot-section bytes.
func EncodeAttackerState(st *AttackerState) []byte {
	e := snapshot.NewEncoder()
	e.Uint(uint64(len(st.Campaign.Breaches)))
	for _, b := range st.Campaign.Breaches {
		e.String(b.Domain)
		e.Time(b.At)
	}
	e.Uint(uint64(len(st.Campaign.Dead)))
	for _, email := range st.Campaign.Dead {
		e.String(email)
	}
	e.Uint(uint64(len(st.Campaign.Resales)))
	for _, domain := range st.Campaign.Resales {
		e.String(domain)
	}
	e.Uint(uint64(len(st.Stuffer.Records)))
	for _, r := range st.Stuffer.Records {
		e.String(r.Email)
		e.Time(r.Time)
		e.Blob(r.IP.AsSlice())
		e.Bool(r.Success)
	}
	e.Uint(uint64(len(st.Stuffer.Draws)))
	for _, dr := range st.Stuffer.Draws {
		e.String(dr.Email)
		e.Uint(dr.N)
	}
	return e.Bytes()
}

// DecodeAttackerState parses EncodeAttackerState's output.
func DecodeAttackerState(data []byte) (*AttackerState, error) {
	d := snapshot.NewDecoder(data)
	st := &AttackerState{}
	n := d.Count(2)
	for i := 0; i < n; i++ {
		st.Campaign.Breaches = append(st.Campaign.Breaches, BreachState{Domain: d.String(), At: d.Time()})
	}
	n = d.Count(1)
	for i := 0; i < n; i++ {
		st.Campaign.Dead = append(st.Campaign.Dead, d.String())
	}
	n = d.Count(1)
	for i := 0; i < n; i++ {
		st.Campaign.Resales = append(st.Campaign.Resales, d.String())
	}
	n = d.Count(4)
	for i := 0; i < n; i++ {
		var r LoginRecord
		r.Email = d.String()
		r.Time = d.Time()
		raw := d.Blob()
		r.Success = d.Bool()
		if err := d.Err(); err != nil {
			return nil, err
		}
		if len(raw) > 0 {
			ip, ok := netip.AddrFromSlice(raw)
			if !ok {
				return nil, fmt.Errorf("%w: login record with %d-byte IP", snapshot.ErrCorrupt, len(raw))
			}
			r.IP = ip
		}
		st.Stuffer.Records = append(st.Stuffer.Records, r)
	}
	n = d.Count(2)
	for i := 0; i < n; i++ {
		st.Stuffer.Draws = append(st.Stuffer.Draws, DrawState{Email: d.String(), N: d.Uint()})
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in attacker state", snapshot.ErrCorrupt, d.Remaining())
	}
	return st, nil
}
