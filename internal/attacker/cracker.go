// Package attacker simulates the adversary whose behaviour Tripwire
// detects: it breaches site account databases, runs a real dictionary
// attack against hashed dumps (recovering exactly the easy passwords, never
// the hard ones), and feeds recovered credentials into a credential-
// stuffing botnet that logs in to the email provider over IMAP through a
// global residential proxy network — reproducing the login telemetry of
// paper §6.4.
package attacker

import (
	"runtime"
	"strings"
	"sync"

	"tripwire/internal/webgen"
)

// Credential is one recovered (email, password) pair.
type Credential struct {
	Username string
	Email    string
	Password string
}

// Cracker recovers plaintext passwords from a breached dump. The wordlist
// is the attacker's dictionary; easy passwords (Word+digit) are inside it
// by construction, hard random passwords are not — so recovery rates follow
// from actual hash computation rather than simulation fiat.
type Cracker struct {
	// Words is the dictionary of seven-letter base words.
	Words []string
	// Workers bounds cracking concurrency; 0 means GOMAXPROCS.
	Workers int
}

// candidates enumerates the dictionary-attack candidate passwords:
// capitalized word + single digit, the dominant weak-password shape.
func (c *Cracker) candidates() []string {
	out := make([]string, 0, len(c.Words)*10)
	for _, w := range c.Words {
		cap := strings.ToUpper(w[:1]) + w[1:]
		for d := '0'; d <= '9'; d++ {
			out = append(out, cap+string(d))
		}
	}
	return out
}

// Crack processes a dump and returns every credential the attacker
// recovers. Plaintext and reversible entries are recovered outright;
// hashed entries fall only to the dictionary.
func (c *Cracker) Crack(dump []webgen.DumpEntry) []Credential {
	cands := c.candidates()
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	jobs := make(chan webgen.DumpEntry)
	results := make(chan Credential)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for e := range jobs {
				if pw, ok := crackOne(e, cands); ok {
					results <- Credential{Username: e.Username, Email: e.Email, Password: pw}
				}
			}
		}()
	}
	go func() {
		for _, e := range dump {
			jobs <- e
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()
	var out []Credential
	for cred := range results {
		out = append(out, cred)
	}
	sortCreds(out)
	return out
}

// crackOne attempts recovery of a single entry.
func crackOne(e webgen.DumpEntry, cands []string) (string, bool) {
	switch e.Policy {
	case webgen.StorePlaintext:
		return e.Stored, true
	case webgen.StoreReversible:
		return webgen.DecodeReversible(e.Stored)
	case webgen.StoreWeakHash, webgen.StoreStrongHash:
		for _, cand := range cands {
			if webgen.EncodePassword(e.Policy, cand, e.Salt) == e.Stored {
				return cand, true
			}
		}
		return "", false
	default:
		return "", false
	}
}

// FilterByDomain keeps only credentials whose email is under domain — the
// attacker testing "the most sensitive and important credentials", those at
// a major email provider (paper §1).
func FilterByDomain(creds []Credential, domain string) []Credential {
	var out []Credential
	suffix := "@" + strings.ToLower(domain)
	for _, c := range creds {
		if strings.HasSuffix(strings.ToLower(c.Email), suffix) {
			out = append(out, c)
		}
	}
	return out
}

func sortCreds(cs []Credential) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].Email < cs[j-1].Email; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}
