package attacker

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func randAttackerState(rng *rand.Rand) *AttackerState {
	st := &AttackerState{}
	base := time.Date(2014, 7, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < rng.Intn(4); i++ {
		st.Campaign.Breaches = append(st.Campaign.Breaches, BreachState{
			Domain: fmt.Sprintf("site%05d.test", i),
			At:     base.Add(time.Duration(rng.Int63n(int64(1000 * time.Hour)))),
		})
	}
	for i := 0; i < rng.Intn(3); i++ {
		st.Campaign.Dead = append(st.Campaign.Dead, fmt.Sprintf("dead%d@hmail.test", i))
	}
	for i := 0; i < rng.Intn(3); i++ {
		st.Campaign.Resales = append(st.Campaign.Resales, fmt.Sprintf("resold%05d.test", i))
	}
	for i := 0; i < rng.Intn(6); i++ {
		var ip netip.Addr
		if rng.Intn(3) > 0 {
			var b [4]byte
			rng.Read(b[:])
			ip = netip.AddrFrom4(b)
		}
		st.Stuffer.Records = append(st.Stuffer.Records, LoginRecord{
			Email:   fmt.Sprintf("acct%d@hmail.test", rng.Intn(9)),
			Time:    base.Add(time.Duration(rng.Int63n(int64(1000 * time.Hour)))),
			IP:      ip,
			Success: rng.Intn(2) == 0,
		})
	}
	for i := 0; i < rng.Intn(4); i++ {
		st.Stuffer.Draws = append(st.Stuffer.Draws, DrawState{Email: fmt.Sprintf("acct%d@hmail.test", i), N: rng.Uint64() % 1000})
	}
	return st
}

func TestAttackerStateRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := randAttackerState(rng)
		data := EncodeAttackerState(st)
		got, err := DecodeAttackerState(data)
		if err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		if !reflect.DeepEqual(got, st) {
			t.Logf("mismatch:\n got %+v\nwant %+v", got, st)
			return false
		}
		return bytes.Equal(EncodeAttackerState(got), data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestStufferExportDrawCounters pins that draw counters survive export:
// they are what makes the resumed attacker's future proxy leases and
// IMAP/POP splits identical to the uninterrupted run's.
func TestStufferExportDrawCounters(t *testing.T) {
	s := NewStuffer(nil, nil, func() time.Time { return time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC) })
	s.nextDraw("a@hmail.test")
	s.nextDraw("a@hmail.test")
	s.nextDraw("b@hmail.test")
	st := s.ExportState()
	want := []DrawState{{Email: "a@hmail.test", N: 2}, {Email: "b@hmail.test", N: 1}}
	if !reflect.DeepEqual(st.Draws, want) {
		t.Fatalf("draws = %+v, want %+v", st.Draws, want)
	}
	got, err := DecodeAttackerState(EncodeAttackerState(&AttackerState{Stuffer: st}))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Stuffer.Draws, want) {
		t.Fatalf("decoded draws = %+v", got.Stuffer.Draws)
	}
}
