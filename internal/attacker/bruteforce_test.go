package attacker

import (
	"testing"
	"time"

	"tripwire/internal/browser"
	"tripwire/internal/core"
	"tripwire/internal/crawler"
	"tripwire/internal/emailprovider"
	"tripwire/internal/geo"
	"tripwire/internal/identity"
	"tripwire/internal/imap"
	"tripwire/internal/simclock"
	"tripwire/internal/webgen"
)

// bruteFixture builds a universe and returns a site configured for the
// brute-force scenario, with a hard and an easy honey account registered.
func bruteFixture(t *testing.T, rateLimited bool) (*webgen.Universe, *webgen.Site, *identity.Identity, *identity.Identity) {
	t.Helper()
	cfg := webgen.DefaultConfig()
	cfg.NumSites = 300
	u := webgen.Generate(cfg)
	var site *webgen.Site
	for _, s := range u.Sites() {
		if s.Eligible() && !s.VerifyToLogin {
			site = s
			break
		}
	}
	if site == nil {
		t.Fatal("no usable site")
	}
	site.PublicMembers = true
	site.RateLimitsLogin = rateLimited

	gen := identity.NewGenerator("bigmail.test", 23+int64(boolToInt(rateLimited)))
	hard := gen.New(identity.Hard)
	easy := gen.New(identity.Easy)
	st := u.Store(site.Domain)
	for _, id := range []*identity.Identity{hard, easy} {
		if _, err := st.Create(id.Username, id.Email, id.Password, "", time.Time{}); err != nil {
			t.Fatal(err)
		}
	}
	return u, site, hard, easy
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func newBruteForcer(u *webgen.Universe) *BruteForcer {
	return &BruteForcer{
		Browser:              browser.New(browser.WithTransport(&browser.HandlerTransport{Handler: u})),
		Words:                identity.DictionaryWords(),
		MaxGuessesPerAccount: 2000,
	}
}

func TestHarvestUsernames(t *testing.T) {
	u, site, hard, easy := bruteFixture(t, false)
	bf := newBruteForcer(u)
	users := bf.HarvestUsernames(site.Domain)
	if len(users) != 2 {
		t.Fatalf("harvested %d usernames: %v", len(users), users)
	}
	found := map[string]bool{}
	for _, x := range users {
		found[x] = true
	}
	if !found[hard.Username] || !found[easy.Username] {
		t.Fatalf("member list missing honey usernames: %v", users)
	}
	// Sites without a public directory yield nothing.
	site.PublicMembers = false
	if got := bf.HarvestUsernames(site.Domain); len(got) != 0 {
		t.Fatalf("harvest on private site returned %v", got)
	}
}

func TestBruteForceRecoversEasyOnly(t *testing.T) {
	u, site, hard, easy := bruteFixture(t, false)
	bf := newBruteForcer(u)
	creds := bf.Attack(site.Domain)
	if len(creds) != 1 {
		t.Fatalf("recovered %d credentials, want exactly the easy one", len(creds))
	}
	got := creds[0]
	if got.Username != easy.Username || got.Password != easy.Password {
		t.Fatalf("recovered %+v", got)
	}
	if got.Email != easy.Email {
		t.Fatalf("email scrape failed: %q, want %q", got.Email, easy.Email)
	}
	_ = hard // hard password is outside any dictionary: never recovered
}

func TestBruteForceDefeatedByRateLimit(t *testing.T) {
	u, site, _, _ := bruteFixture(t, true)
	bf := newBruteForcer(u)
	if creds := bf.Attack(site.Domain); len(creds) != 0 {
		t.Fatalf("rate-limited site still yielded %v", creds)
	}
}

// TestBruteForceDetectedByTripwire runs the full §6.3.5 scenario: no
// database breach at all — the attacker guesses a site password online,
// pivots to the provider, and Tripwire still (correctly) declares the site
// compromised.
func TestBruteForceDetectedByTripwire(t *testing.T) {
	u, site, _, easy := bruteFixture(t, false)

	start := time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)
	clock := simclock.New(start)
	provider := emailprovider.New("bigmail.test")
	provider.Now = clock.Now
	if err := provider.CreateAccount(easy.Email, easy.FullName(), easy.Password); err != nil {
		t.Fatal(err)
	}
	ledger := core.NewLedger()
	ledger.AddIdentity(easy)
	ledger.Burn(ledger.Take(identity.Easy), site.Domain, site.Rank, site.Category, start, crawler.CodeOKSubmission, false)
	monitor := core.NewMonitor(ledger, start)

	// Attack: online guessing, then credential stuffing at the provider.
	bf := newBruteForcer(u)
	creds := bf.Attack(site.Domain)
	if len(creds) != 1 {
		t.Fatalf("brute force recovered %d creds", len(creds))
	}
	pool := NewProxyPool(geo.NewSpace(), 31, 0.1)
	stuffer := NewStuffer(imap.NewServer(provider), pool, clock.Now)
	clock.Advance(24 * time.Hour)
	if ok, _ := stuffer.TryLogin(creds[0], true); !ok {
		t.Fatal("stuffing the brute-forced credential failed")
	}

	monitor.Ingest(provider.DumpSince(start))
	det, ok := monitor.Detection(site.Domain)
	if !ok {
		t.Fatal("brute-force compromise went undetected")
	}
	if det.AccountsAccessed != 1 {
		t.Fatalf("accessed = %d", det.AccountsAccessed)
	}
}
