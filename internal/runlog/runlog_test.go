package runlog

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"tripwire/internal/sim"
)

var (
	pilotOnce sync.Once
	pilotInst *sim.Pilot
)

func pilot(t *testing.T) *sim.Pilot {
	t.Helper()
	pilotOnce.Do(func() {
		pilotInst = sim.NewPilot(sim.SmallConfig()).Run()
	})
	return pilotInst
}

func TestWriteAndReadBack(t *testing.T) {
	p := pilot(t)
	dir := t.TempDir()
	man, err := Write(dir, p, "summary body")
	if err != nil {
		t.Fatal(err)
	}
	if man.Detections == 0 || man.Attempts == 0 || man.Burned == 0 {
		t.Fatalf("manifest empty: %+v", man)
	}
	if man.Alarms != 0 {
		t.Fatalf("alarms in manifest: %d", man.Alarms)
	}

	for _, name := range []string{
		"manifest.json", "summary.txt", "logins.csv", "attempts.json",
		"registrations.json", "detections.json", "disclosures.json",
		"attacker_stats.json",
	} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("artifact %s missing: %v", name, err)
		}
	}

	got, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got != man {
		t.Fatalf("manifest round trip: %+v vs %+v", got, man)
	}

	dets, err := ReadDetections(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) != man.Detections {
		t.Fatalf("detections.json has %d records, manifest says %d", len(dets), man.Detections)
	}
	for _, d := range dets {
		if d.AccountsAccessed == 0 || d.TotalLogins == 0 || d.BreachClass == "" {
			t.Fatalf("detection record incomplete: %+v", d)
		}
		if d.FirstSeen.After(d.LastSeen) {
			t.Fatalf("detection times inverted: %+v", d)
		}
	}
}

func TestRegistrationsJSONConsistent(t *testing.T) {
	p := pilot(t)
	dir := t.TempDir()
	if _, err := Write(dir, p, "s"); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "registrations.json"))
	if err != nil {
		t.Fatal(err)
	}
	var regs []RegistrationRecord
	if err := json.Unmarshal(raw, &regs); err != nil {
		t.Fatal(err)
	}
	if len(regs) != len(p.Ledger.Registrations()) {
		t.Fatalf("%d records for %d registrations", len(regs), len(p.Ledger.Registrations()))
	}
	validCount := 0
	for _, r := range regs {
		if r.Domain == "" || r.Status == "" || r.Class == "" {
			t.Fatalf("record incomplete: %+v", r)
		}
		if r.Valid {
			validCount++
		}
	}
	if validCount == 0 {
		t.Fatal("no registration marked valid")
	}
}

func TestNoSecretsInArtifacts(t *testing.T) {
	p := pilot(t)
	dir := t.TempDir()
	if _, err := Write(dir, p, "s"); err != nil {
		t.Fatal(err)
	}
	// The dataset and detections must not leak passwords.
	for _, name := range []string{"logins.csv", "detections.json"} {
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		content := string(raw)
		for _, reg := range p.Ledger.Registrations() {
			if strings.Contains(content, reg.Identity.Password) {
				t.Fatalf("%s leaks a password", name)
			}
		}
	}
}

func TestReadMissingDir(t *testing.T) {
	if _, err := ReadManifest(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing manifest read succeeded")
	}
	if _, err := ReadDetections(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing detections read succeeded")
	}
}
