// Package runlog persists a completed pilot's results as a directory of
// analysis-ready artifacts: the rendered summary, the anonymized login
// dataset (§7.4), and JSON records of attempts, registrations, detections,
// and disclosures for external tooling.
package runlog

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"tripwire/internal/datarelease"
	"tripwire/internal/disclosure"
	"tripwire/internal/report"
	"tripwire/internal/sim"
)

// AttemptRecord is the JSON shape of one crawl attempt.
type AttemptRecord struct {
	Domain  string    `json:"domain"`
	Rank    int       `json:"rank"`
	Class   string    `json:"password_class"`
	Code    string    `json:"termination_code"`
	Exposed bool      `json:"exposed"`
	Manual  bool      `json:"manual"`
	When    time.Time `json:"when"`
}

// RegistrationRecord is the JSON shape of one burned identity.
type RegistrationRecord struct {
	Domain   string    `json:"domain"`
	Rank     int       `json:"rank"`
	Category string    `json:"category"`
	Class    string    `json:"password_class"`
	Status   string    `json:"status"`
	Manual   bool      `json:"manual"`
	When     time.Time `json:"when"`
	Valid    bool      `json:"valid"`
}

// DetectionRecord is the JSON shape of one detected compromise.
type DetectionRecord struct {
	Domain             string    `json:"domain"`
	Rank               int       `json:"rank"`
	Category           string    `json:"category"`
	FirstSeen          time.Time `json:"first_seen"`
	LastSeen           time.Time `json:"last_seen"`
	AccountsRegistered int       `json:"accounts_registered"`
	AccountsAccessed   int       `json:"accounts_accessed"`
	HardAccessed       bool      `json:"hard_accessed"`
	BreachClass        string    `json:"breach_class"`
	TotalLogins        int       `json:"total_logins"`
}

// DisclosureRecord is the JSON shape of one notification outcome.
type DisclosureRecord struct {
	Domain         string        `json:"domain"`
	SentAt         time.Time     `json:"sent_at"`
	Outcome        string        `json:"outcome"`
	Reaction       string        `json:"reaction,omitempty"`
	RespondedAfter time.Duration `json:"responded_after_ns,omitempty"`
}

// Manifest describes the run.
type Manifest struct {
	Seed        int64     `json:"seed"`
	Sites       int       `json:"sites"`
	Start       time.Time `json:"start"`
	End         time.Time `json:"end"`
	Attempts    int       `json:"attempts"`
	Burned      int       `json:"registrations"`
	Detections  int       `json:"detections"`
	Alarms      int       `json:"integrity_alarms"`
	GeneratedBy string    `json:"generated_by"`
}

// Write persists all artifacts of p into dir (created if needed) and
// returns the manifest. summary is the pre-rendered Study summary text.
func Write(dir string, p *sim.Pilot, summary string) (Manifest, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Manifest{}, fmt.Errorf("runlog: %w", err)
	}

	man := Manifest{
		Seed:        p.Cfg.Seed,
		Sites:       p.Cfg.Web.NumSites,
		Start:       p.Cfg.Start,
		End:         p.Cfg.End,
		Attempts:    len(p.Attempts),
		Burned:      len(p.Ledger.Registrations()),
		Detections:  len(p.Monitor.Detections()),
		Alarms:      len(p.Monitor.Alarms()),
		GeneratedBy: "tripwire reproduction",
	}
	if err := writeJSON(filepath.Join(dir, "manifest.json"), man); err != nil {
		return man, err
	}
	if err := os.WriteFile(filepath.Join(dir, "summary.txt"), []byte(summary), 0o644); err != nil {
		return man, fmt.Errorf("runlog: %w", err)
	}

	// Anonymized dataset (§7.4) with its audit enforced at write time.
	records := datarelease.Build(p)
	if err := datarelease.Audit(records, p); err != nil {
		return man, err
	}
	f, err := os.Create(filepath.Join(dir, "logins.csv"))
	if err != nil {
		return man, fmt.Errorf("runlog: %w", err)
	}
	if err := datarelease.Write(f, records); err != nil {
		f.Close()
		return man, err
	}
	if err := f.Close(); err != nil {
		return man, fmt.Errorf("runlog: %w", err)
	}

	// Attempts.
	atts := make([]AttemptRecord, 0, len(p.Attempts))
	for _, a := range p.Attempts {
		atts = append(atts, AttemptRecord{
			Domain: a.Domain, Rank: a.Rank, Class: a.Class.String(),
			Code: a.Code.String(), Exposed: a.Exposed, Manual: a.Manual, When: a.When,
		})
	}
	if err := writeJSON(filepath.Join(dir, "attempts.json"), atts); err != nil {
		return man, err
	}

	// Registrations with ground-truth validity.
	valid := make(map[string]bool)
	for _, v := range p.ValidateAll() {
		valid[v.Registration.Identity.Email] = v.Valid
	}
	regs := make([]RegistrationRecord, 0)
	for _, r := range p.Ledger.Registrations() {
		regs = append(regs, RegistrationRecord{
			Domain: r.Domain, Rank: r.Rank, Category: r.Category,
			Class: r.Identity.Class.String(), Status: r.Status.String(),
			Manual: r.Manual, When: r.When, Valid: valid[r.Identity.Email],
		})
	}
	if err := writeJSON(filepath.Join(dir, "registrations.json"), regs); err != nil {
		return man, err
	}

	// Detections.
	dets := make([]DetectionRecord, 0)
	for _, d := range p.Monitor.Detections() {
		total := 0
		for _, evs := range d.Logins {
			total += len(evs)
		}
		dets = append(dets, DetectionRecord{
			Domain: d.Domain, Rank: d.Rank, Category: d.Category,
			FirstSeen: d.FirstSeen, LastSeen: d.LastSeen,
			AccountsRegistered: d.AccountsRegistered, AccountsAccessed: d.AccountsAccessed,
			HardAccessed: d.HardAccessed, BreachClass: p.Monitor.Classify(d).String(),
			TotalLogins: total,
		})
	}
	if err := writeJSON(filepath.Join(dir, "detections.json"), dets); err != nil {
		return man, err
	}

	// Disclosures.
	notes := make([]DisclosureRecord, 0)
	for _, n := range p.Disclosure.Notifications() {
		rec := DisclosureRecord{Domain: n.Domain, SentAt: n.SentAt, Outcome: n.Outcome.String()}
		if n.Outcome == disclosure.OutcomeResponded {
			rec.Reaction = n.Reaction.String()
			rec.RespondedAfter = n.RespondedAfter
		}
		notes = append(notes, rec)
	}
	if err := writeJSON(filepath.Join(dir, "disclosures.json"), notes); err != nil {
		return man, err
	}

	// Attacker statistics as JSON for external plotting.
	if err := writeJSON(filepath.Join(dir, "attacker_stats.json"), report.Sec64(p)); err != nil {
		return man, err
	}
	return man, nil
}

// ReadManifest loads the manifest of a results directory.
func ReadManifest(dir string) (Manifest, error) {
	var man Manifest
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return man, fmt.Errorf("runlog: %w", err)
	}
	if err := json.Unmarshal(raw, &man); err != nil {
		return man, fmt.Errorf("runlog: parsing manifest: %w", err)
	}
	return man, nil
}

// ReadDetections loads detections.json from a results directory.
func ReadDetections(dir string) ([]DetectionRecord, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "detections.json"))
	if err != nil {
		return nil, fmt.Errorf("runlog: %w", err)
	}
	var out []DetectionRecord
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, fmt.Errorf("runlog: parsing detections: %w", err)
	}
	return out, nil
}

func writeJSON(path string, v any) error {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("runlog: encoding %s: %w", filepath.Base(path), err)
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		return fmt.Errorf("runlog: %w", err)
	}
	return nil
}
