package webgen

import (
	"context"
	"net"
	"net/http"
	"net/url"
	"strings"
	"testing"
	"time"

	"tripwire/internal/captcha"
)

// TestServeOverRealTCP proves the synthetic web serves over an actual
// socket, not just the in-process transport: an http.Server listens on
// loopback, and a stock http.Client (with Host-header rewriting, the moral
// equivalent of DNS) performs a full registration.
func TestServeOverRealTCP(t *testing.T) {
	u := Generate(smallConfig())
	var site *Site
	for _, s := range u.Sites() {
		if s.Eligible() && !s.MultiStage && s.Captcha == captcha.None && !s.FlakyBackend &&
			!s.OddFieldNames && !s.ObscureRegLink && !s.JSForm && !s.Passwords.RequireSpecial &&
			s.MaxEmailLen == 0 {
			site = s
			break
		}
	}
	if site == nil {
		t.Skip("no clean site")
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen on loopback: %v", err)
	}
	srv := &http.Server{Handler: u, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	defer srv.Close()

	addr := ln.Addr().String()
	// Route every request to the listener while preserving the virtual
	// Host so the universe can dispatch by site.
	client := &http.Client{
		Transport: &http.Transport{
			DialContext: func(_ context.Context, network, _ string) (net.Conn, error) {
				return net.Dial(network, addr)
			},
		},
		Timeout: 10 * time.Second,
	}

	resp, err := client.Get("http://" + site.Domain + site.RegPath)
	if err != nil {
		t.Fatalf("GET over TCP: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}

	vals := fillPerfect(u, site, "tcpuser@mail.test", "Sunshine3aQ")
	form := url.Values(vals)
	post, err := client.Post("http://"+site.Domain+site.RegPath,
		"application/x-www-form-urlencoded", strings.NewReader(form.Encode()))
	if err != nil {
		t.Fatalf("POST over TCP: %v", err)
	}
	post.Body.Close()
	if u.Store(site.Domain).Len() != 1 {
		t.Fatal("registration over real TCP did not create the account")
	}
}
