package webgen

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"

	"tripwire/internal/xrand"
)

// FieldKind is the semantic meaning of a registration-form field. The
// server validates submissions against the spec; the crawler only ever sees
// the rendered HTML and must recover the meaning heuristically — exactly
// the paper's setting.
type FieldKind int

// Field kinds appearing on synthetic registration forms.
const (
	FieldEmail FieldKind = iota
	FieldPassword
	FieldConfirm
	FieldUsername
	FieldFirstName
	FieldLastName
	FieldFullName
	FieldZip
	FieldPhone
	FieldDOB
	FieldState
	FieldTOS
	FieldNewsletter
	FieldCaptcha
	FieldCSRF
	FieldCreditCard
)

// String names the kind.
func (k FieldKind) String() string {
	names := [...]string{
		"email", "password", "confirm", "username", "first-name",
		"last-name", "full-name", "zip", "phone", "dob", "state", "tos",
		"newsletter", "captcha", "csrf", "credit-card",
	}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("FieldKind(%d)", int(k))
}

// FieldSpec is one field on a site's registration form.
type FieldSpec struct {
	Kind     FieldKind
	Name     string // the HTML name attribute
	Label    string // visible label text
	Type     string // HTML input type: text, password, email, checkbox, hidden, select
	Required bool
}

// FormSpec is a site's registration form layout, deterministic per site.
type FormSpec struct {
	Fields []FieldSpec
}

// Field returns the first field of the given kind and whether it exists.
func (f *FormSpec) Field(kind FieldKind) (FieldSpec, bool) {
	for _, fs := range f.Fields {
		if fs.Kind == kind {
			return fs, true
		}
	}
	return FieldSpec{}, false
}

// fieldNamePools maps each kind to realistic HTML name attributes.
var fieldNamePools = map[FieldKind][]string{
	FieldEmail:      {"email", "user_email", "mail", "email_address", "e-mail"},
	FieldPassword:   {"password", "pass", "passwd", "user_password", "pwd"},
	FieldConfirm:    {"password2", "confirm_password", "password_confirm", "pass2", "repeat_password"},
	FieldUsername:   {"username", "user", "login", "user_name", "nickname"},
	FieldFirstName:  {"first_name", "fname", "firstname", "given_name"},
	FieldLastName:   {"last_name", "lname", "lastname", "surname"},
	FieldFullName:   {"name", "full_name", "fullname", "realname"},
	FieldZip:        {"zip", "zipcode", "postal_code", "zip_code"},
	FieldPhone:      {"phone", "telephone", "mobile", "phone_number"},
	FieldDOB:        {"dob", "birthday", "birth_date", "date_of_birth"},
	FieldState:      {"state", "region", "province"},
	FieldTOS:        {"tos", "agree", "accept_terms", "terms"},
	FieldNewsletter: {"newsletter", "subscribe", "mailing_list", "optin"},
	FieldCaptcha:    {"captcha", "captcha_answer", "verification", "security_code"},
	FieldCreditCard: {"card_number", "cc_number", "creditcard"},
	FieldCSRF:       {"csrf", "csrf_token", "_token", "authenticity_token"},
}

// fieldLabels maps kinds to visible English label variants.
var fieldLabels = map[FieldKind][]string{
	FieldEmail:      {"Email address", "Your email", "E-mail", "Email"},
	FieldPassword:   {"Password", "Choose a password", "Create password"},
	FieldConfirm:    {"Confirm password", "Repeat password", "Password again"},
	FieldUsername:   {"Username", "Choose a username", "Display name"},
	FieldFirstName:  {"First name", "Given name"},
	FieldLastName:   {"Last name", "Surname", "Family name"},
	FieldFullName:   {"Full name", "Your name", "Name"},
	FieldZip:        {"ZIP code", "Postal code", "Zip"},
	FieldPhone:      {"Phone number", "Mobile phone", "Telephone"},
	FieldDOB:        {"Date of birth", "Birthday"},
	FieldState:      {"State", "Region"},
	FieldTOS:        {"I agree to the Terms of Service", "I accept the terms and conditions"},
	FieldNewsletter: {"Send me the newsletter", "Subscribe to updates"},
	FieldCaptcha:    {"Enter the code shown", "Security check", "Verification code"},
	FieldCreditCard: {"Credit card number", "Card number"},
	FieldCSRF:       {""}, // hidden: no visible label
}

// buildFormSpec constructs the site's registration form deterministically
// from its seed. The first call is cached by the Universe.
func buildFormSpec(s *Site) *FormSpec {
	rng := xrand.New(s.seed ^ 0x5eed)
	var spec FormSpec
	add := func(kind FieldKind, typ string, required bool) {
		fs := FieldSpec{Kind: kind, Type: typ, Required: required}
		if s.OddFieldNames && kind != FieldPassword && kind != FieldConfirm && kind != FieldCSRF {
			// Misleading machine names AND unhelpful labels: the paper's
			// "field misidentification" failure mode. Password fields stay
			// identifiable via type=password, as in real browsers.
			fs.Name = fmt.Sprintf("field_%d", len(spec.Fields)+1)
			fs.Label = []string{"Required information", "Details", "Entry", "Your info"}[rng.Intn(4)]
		} else {
			fs.Name = pickFrom(rng, fieldNamePools[kind])
			fs.Label = pickFrom(rng, fieldLabels[kind])
		}
		spec.Fields = append(spec.Fields, fs)
	}

	add(FieldCSRF, "hidden", true)
	if rng.Float64() < 0.5 {
		add(FieldUsername, "text", true)
	}
	add(FieldEmail, pickFrom(rng, []string{"text", "email"}), true)
	add(FieldPassword, "password", true)
	if rng.Float64() < 0.6 {
		add(FieldConfirm, "password", true)
	}
	if rng.Float64() < 0.4 {
		if rng.Float64() < 0.5 {
			add(FieldFirstName, "text", rng.Float64() < 0.7)
			add(FieldLastName, "text", rng.Float64() < 0.7)
		} else {
			add(FieldFullName, "text", rng.Float64() < 0.7)
		}
	}
	if rng.Float64() < 0.20 {
		add(FieldZip, "text", rng.Float64() < 0.5)
	}
	if rng.Float64() < 0.15 {
		add(FieldPhone, "text", rng.Float64() < 0.4)
	}
	if rng.Float64() < 0.10 {
		add(FieldDOB, "text", rng.Float64() < 0.5)
	}
	if rng.Float64() < 0.10 {
		add(FieldState, "select", false)
	}
	if s.RequiresPayment {
		add(FieldCreditCard, "text", true)
	}
	if rng.Float64() < 0.5 {
		add(FieldTOS, "checkbox", true)
	}
	if rng.Float64() < 0.3 {
		add(FieldNewsletter, "checkbox", false)
	}
	if s.Captcha != 0 { // captcha.None
		add(FieldCaptcha, "text", true)
	}
	return &spec
}

// profileFormSpec is the second page of a multi-stage registration: the
// credential fields live on page one, profile fields on page two.
func profileFormSpec(s *Site) *FormSpec {
	rng := xrand.New(s.seed ^ 0x2a6e)
	var spec FormSpec
	add := func(kind FieldKind, typ string, required bool) {
		spec.Fields = append(spec.Fields, FieldSpec{
			Kind: kind, Type: typ, Required: required,
			Name:  pickFrom(rng, fieldNamePools[kind]),
			Label: pickFrom(rng, fieldLabels[kind]),
		})
	}
	add(FieldCSRF, "hidden", true)
	add(FieldFirstName, "text", true)
	add(FieldLastName, "text", true)
	add(FieldZip, "text", rng.Float64() < 0.5)
	if rng.Float64() < 0.5 {
		add(FieldTOS, "checkbox", true)
	}
	return &spec
}

func pickFrom(rng *rand.Rand, list []string) string { return list[rng.Intn(len(list))] }

// CSRFToken returns the site's CSRF token — what a human's browser would
// hold after rendering the (possibly script-assembled) form. Exported for
// the manual-registration path and tests.
func CSRFToken(domain string) string { return csrfToken(domain) }

// csrfToken returns the site's CSRF token: an HMAC of the domain, so both
// the renderer and the validator compute it statelessly.
func csrfToken(domain string) string {
	mac := hmac.New(sha256.New, []byte("webgen-csrf"))
	mac.Write([]byte(domain))
	return hex.EncodeToString(mac.Sum(nil))[:16]
}
