package webgen

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestParallelRegistrationsOneBackend drives many concurrent registrations
// against a single site's backend — the store, token counters, and mailer a
// crawl wave shares — and verifies every account landed intact. Under -race
// this is the data-race proof for the universe's shared maps.
func TestParallelRegistrationsOneBackend(t *testing.T) {
	t.Parallel()
	u, site := universeForSite(t, nil)

	var mailMu sync.Mutex
	mails := 0
	u.Mailer = MailerFunc(func(from, to, subject, body string) error {
		mailMu.Lock()
		mails++
		mailMu.Unlock()
		return nil
	})

	const users = 32
	var wg sync.WaitGroup
	errs := make([]error, users)
	for i := 0; i < users; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			email := fmt.Sprintf("stress%02d@mail.test", i)
			vals := fillPerfect(u, site, email, "Sunshine3aQ")
			if f, ok := u.FormSpec(site).Field(FieldUsername); ok {
				vals.Set(f.Name, fmt.Sprintf("stressuser%02d", i))
			}
			req := httptest.NewRequest(http.MethodPost, "http://"+site.Domain+site.RegPath,
				strings.NewReader(vals.Encode()))
			req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
			rec := httptest.NewRecorder()
			u.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				errs[i] = fmt.Errorf("registration %d returned %d", i, rec.Code)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	st := u.Store(site.Domain)
	if st.Len() != users {
		t.Fatalf("store holds %d accounts, want %d", st.Len(), users)
	}
	for i := 0; i < users; i++ {
		email := fmt.Sprintf("stress%02d@mail.test", i)
		user := fmt.Sprintf("stressuser%02d", i)
		if _, ok := u.FormSpec(site).Field(FieldUsername); !ok {
			user = email[:strings.IndexByte(email, '@')]
		}
		entry, ok := st.Lookup(user)
		if !ok {
			t.Fatalf("account %s missing after concurrent registration", user)
		}
		if entry.Email != email {
			t.Fatalf("account %s stored email %s, want %s", user, entry.Email, email)
		}
	}
	if site.EmailVerify || site.WelcomeEmail {
		if mails != users {
			t.Fatalf("%d mails sent for %d registrations", mails, users)
		}
	}
}

// TestPerDomainTokensAreInterleavingFree checks that tokens minted for one
// domain are a pure function of that domain's own registration count: a
// registration at some other site slipped in between must not perturb them.
func TestPerDomainTokensAreInterleavingFree(t *testing.T) {
	t.Parallel()
	mint := func(interleave bool) string {
		u := Generate(smallConfig())
		a := u.nextToken("alpha.test", "vfy")
		if interleave {
			u.nextToken("beta.test", "vfy")
		}
		return a + "|" + u.nextToken("alpha.test", "vfy")
	}
	plain, interleaved := mint(false), mint(true)
	if plain != interleaved {
		t.Fatalf("alpha.test tokens depend on beta.test activity: %q vs %q", plain, interleaved)
	}
	u := Generate(smallConfig())
	tok := u.nextToken("gamma.test", "salt")
	if !strings.Contains(tok, "gamma.test") || !strings.HasPrefix(tok, "salt-") {
		t.Fatalf("token %q does not carry its prefix and domain", tok)
	}
	// Tokens never collide across domains even at equal counters.
	if a, b := u.nextToken("x.test", "vfy"), u.nextToken("y.test", "vfy"); a == b {
		t.Fatalf("cross-domain token collision: %q", a)
	}
}
