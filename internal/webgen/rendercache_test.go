package webgen

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// crawlablePaths lists the GET pages the render cache covers for a site.
func crawlablePaths(s *Site) []string {
	paths := []string{"/", "/about", "/contact", "/login", "/no-such-page"}
	if s.HasRegistration {
		paths = append(paths, s.RegPath)
	}
	return paths
}

func getPage(t *testing.T, u *Universe, host, path string) string {
	t.Helper()
	w := httptest.NewRecorder()
	u.ServeHTTP(w, httptest.NewRequest("GET", "http://"+host+path, nil))
	return w.Body.String()
}

// TestRenderCacheByteIdentical proves the render cache is invisible:
// every cacheable page — including registration pages whose CSRF tokens
// and CAPTCHA challenges are spliced in at serve time — must be
// byte-identical to a from-scratch render, whether served once or
// repeatedly, by one worker or eight concurrently.
func TestRenderCacheByteIdentical(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumSites = 150
	cfg.Seed = 11
	cached := Generate(cfg)
	uncached := Generate(cfg)
	uncached.DisableRenderCache = true

	type pageKey struct{ host, path string }
	want := make(map[pageKey]string)
	for _, s := range uncached.Sites() {
		if s.LoadFailure {
			continue
		}
		for _, p := range crawlablePaths(s) {
			want[pageKey{s.Domain, p}] = getPage(t, uncached, s.Domain, p)
		}
	}
	if len(want) == 0 {
		t.Fatal("no pages collected")
	}

	for _, workers := range []int{1, 8} {
		keys := make(chan pageKey, len(want))
		for k := range want {
			keys <- k
		}
		close(keys)
		var wg sync.WaitGroup
		var mu sync.Mutex
		var mismatches int
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for k := range keys {
					// Serve twice: the first fill may miss, the second must
					// hit — both have to match the uncached render.
					for pass := 0; pass < 2; pass++ {
						got := getPage(t, cached, k.host, k.path)
						if got != want[k] {
							mu.Lock()
							if mismatches < 3 {
								t.Errorf("workers=%d pass=%d: %s%s differs from uncached render", workers, pass, k.host, k.path)
							}
							mismatches++
							mu.Unlock()
						}
					}
				}
			}()
		}
		wg.Wait()
		if mismatches > 0 {
			t.Fatalf("workers=%d: %d cached pages differed", workers, mismatches)
		}
	}
}

// TestRenderCacheRegistrationTokens spot-checks that the spliced dynamic
// values are real: a cached registration page still carries the site's
// valid CSRF token, not a leftover slot sentinel.
func TestRenderCacheRegistrationTokens(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumSites = 150
	cfg.Seed = 11
	u := Generate(cfg)
	checked := 0
	for _, s := range u.Sites() {
		if s.LoadFailure || !s.HasRegistration || s.ExternalAuthOnly || s.JSForm {
			continue
		}
		for pass := 0; pass < 2; pass++ { // miss then hit
			body := getPage(t, u, s.Domain, s.RegPath)
			if idx := strings.IndexByte(body, 0); idx >= 0 {
				t.Fatalf("%s%s: unspliced slot sentinel at byte %d", s.Domain, s.RegPath, idx)
			}
			if !strings.Contains(body, CSRFToken(s.Domain)) {
				t.Fatalf("%s%s: cached page lacks the site CSRF token", s.Domain, s.RegPath)
			}
		}
		checked++
		if checked >= 20 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no registration pages checked")
	}
}
