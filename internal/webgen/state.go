package webgen

import (
	"fmt"

	"tripwire/internal/snapshot"
)

// UniverseState is the universe's durable lazy-materialization record:
// which site ranks have been derived so far. Site contents themselves are
// pure functions of (config, rank) and never need serializing — the rank
// set is what a resumed run must re-derive to reach the same footprint.
type UniverseState struct {
	NumSites     int
	Materialized []int // sorted 1-based ranks
}

// ExportState captures the materialization set. It must only be called
// from the simulation driver between epochs (materialization happens
// inside wave events, whose completion the driver has already observed).
func (u *Universe) ExportState() *UniverseState {
	st := &UniverseState{NumSites: len(u.slots)}
	for i := range u.slots {
		if u.slots[i].site != nil {
			st.Materialized = append(st.Materialized, i+1)
		}
	}
	return st
}

// EncodeUniverseState serializes the export into snapshot-section bytes.
// Ranks are delta-encoded: the set is sorted and typically dense, so the
// section stays small even at millions of materialized sites.
func EncodeUniverseState(st *UniverseState) []byte {
	e := snapshot.NewEncoder()
	e.Int(int64(st.NumSites))
	e.Uint(uint64(len(st.Materialized)))
	prev := 0
	for _, r := range st.Materialized {
		e.Uint(uint64(r - prev))
		prev = r
	}
	return e.Bytes()
}

// DecodeUniverseState parses EncodeUniverseState's output.
func DecodeUniverseState(data []byte) (*UniverseState, error) {
	d := snapshot.NewDecoder(data)
	st := &UniverseState{NumSites: int(d.Int())}
	n := d.Count(1)
	prev := 0
	for i := 0; i < n; i++ {
		r := prev + int(d.Uint())
		if d.Err() == nil && (r <= prev || r > st.NumSites) {
			return nil, fmt.Errorf("%w: materialized rank %d out of range", snapshot.ErrCorrupt, r)
		}
		st.Materialized = append(st.Materialized, r)
		prev = r
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in universe state", snapshot.ErrCorrupt, d.Remaining())
	}
	return st, nil
}
