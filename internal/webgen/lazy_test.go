package webgen

import (
	"reflect"
	"sync"
	"testing"

	"tripwire/internal/xrand"
)

// TestLazyMatchesEagerGeneration proves lazy materialization is invisible:
// every site derived on demand — in scrambled order, concurrently, through
// Site, SiteByRank or ServeHTTP — must equal the site an eager pass over
// all ranks produces, field for field, and serve byte-identical pages.
// This mirrors TestRenderCacheByteIdentical for the site table.
func TestLazyMatchesEagerGeneration(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumSites = 400
	cfg.Seed = 11

	// Eager reference: the pure per-rank derivation, rank order.
	eager := make([]*Site, cfg.NumSites)
	for rank := 1; rank <= cfg.NumSites; rank++ {
		eager[rank-1] = generateSiteAt(cfg, rank)
	}

	// Lazy universe touched in a scrambled order by concurrent workers.
	u := Generate(cfg)
	ranks := xrand.New(99).Perm(cfg.NumSites)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(ranks); i += 8 {
				u.SiteByRank(ranks[i] + 1)
			}
		}(w)
	}
	wg.Wait()

	for rank := 1; rank <= cfg.NumSites; rank++ {
		got, ok := u.SiteByRank(rank)
		if !ok {
			t.Fatalf("rank %d missing", rank)
		}
		if !reflect.DeepEqual(got, eager[rank-1]) {
			t.Fatalf("rank %d differs between lazy and eager generation:\nlazy:  %+v\neager: %+v",
				rank, got, eager[rank-1])
		}
	}

	// Served bytes must match a second, rank-order-touched universe.
	ordered := Generate(cfg)
	for _, s := range ordered.Sites() {
		if s.LoadFailure {
			continue
		}
		for _, p := range crawlablePaths(s) {
			if getPage(t, u, s.Domain, p) != getPage(t, ordered, s.Domain, p) {
				t.Fatalf("%s%s: page bytes depend on materialization order", s.Domain, p)
			}
		}
	}
}

// TestLazyMaterializesOnlyTouchedRanks pins the O(active-sites) memory
// property: touching a handful of ranks in a large universe must not
// materialize the rest.
func TestLazyMaterializesOnlyTouchedRanks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumSites = 100000
	u := Generate(cfg)
	if got := u.MaterializedSites(); got != 0 {
		t.Fatalf("fresh universe already materialized %d sites", got)
	}
	touched := []int{1, 7, 500, 99999, 100000}
	for _, rank := range touched {
		if _, ok := u.SiteByRank(rank); !ok {
			t.Fatalf("rank %d not found", rank)
		}
	}
	// Repeat touches and domain lookups must not re-materialize.
	u.SiteByRank(7)
	if _, ok := u.Site("site00500.test"); !ok {
		t.Fatal("domain lookup failed")
	}
	if got := u.MaterializedSites(); got != len(touched) {
		t.Fatalf("materialized %d sites, want exactly %d", got, len(touched))
	}
	if n := u.NumSites(); n != cfg.NumSites {
		t.Fatalf("NumSites = %d, want %d", n, cfg.NumSites)
	}
}

// TestSiteDomainLookup exercises the rank-encoded domain parser, including
// the non-canonical aliases it must reject.
func TestSiteDomainLookup(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumSites = 120
	u := Generate(cfg)
	for _, rank := range []int{1, 60, 120} {
		s, ok := u.SiteByRank(rank)
		if !ok {
			t.Fatalf("rank %d missing", rank)
		}
		for _, host := range []string{s.Domain, s.Domain + ":8080", "SITE" + s.Domain[4:]} {
			got, ok := u.Site(host)
			if !ok || got != s {
				t.Errorf("Site(%q) = %v, %v; want rank %d", host, got, ok, rank)
			}
		}
	}
	for _, host := range []string{
		"site1.test",      // non-canonical alias of site00001.test
		"site00121.test",  // out of range
		"site00000.test",  // rank zero
		"other.test",      // wrong shape
		"siteXXXXX.test",  // non-digits
		"site.test",       // empty digits
		"site00001.test2", // wrong suffix
	} {
		if _, ok := u.Site(host); ok {
			t.Errorf("Site(%q) unexpectedly resolved", host)
		}
	}
}
