// Package webgen generates and serves a synthetic ranked web: thousands of
// sites with registration forms, multi-page flows, CAPTCHAs, non-English
// content, load failures, flaky backends, and varied password-storage
// practices. It substitutes for the live Alexa/Quantcast-ranked Internet
// that the paper's crawler visited; attribute rates are calibrated to the
// paper's Table 4 manual census and Figure 3 funnel so the crawler sees the
// same failure-mode mix.
package webgen

import (
	"fmt"
	"math/rand"
	"time"

	"tripwire/internal/captcha"
	"tripwire/internal/xrand"
)

// Language is a site's primary content language. The Tripwire crawler's
// heuristics only support English (paper §4.3.1), so non-English sites are
// a major source of ineligibility (44.3% in Table 4).
type Language string

// Languages appearing in the synthetic web. Distribution loosely follows
// the paper's §6.2.1 notes (Chinese and Russian sites among missed breaches).
const (
	LangEnglish Language = "en"
	LangChinese Language = "zh"
	LangRussian Language = "ru"
	LangSpanish Language = "es"
	LangGerman  Language = "de"
	LangFrench  Language = "fr"
)

// StoragePolicy is how a site stores account passwords. It determines what
// an attacker recovers from a database breach (paper §6.1.2).
type StoragePolicy int

const (
	// StorePlaintext keeps passwords in the clear: a dump exposes every
	// password, easy and hard.
	StorePlaintext StoragePolicy = iota
	// StoreReversible uses an "easily-reversed hash" (e.g. unsalted
	// homebrew encoding); operationally equivalent to plaintext for an
	// attacker.
	StoreReversible
	// StoreWeakHash is a fast unsalted digest (MD5-style): dictionary
	// attacks recover easy passwords quickly; random 10-char hard
	// passwords survive.
	StoreWeakHash
	// StoreStrongHash is salted and slow: easy passwords still fall to a
	// targeted dictionary, but only after substantially more work.
	StoreStrongHash
)

// String names the policy.
func (p StoragePolicy) String() string {
	switch p {
	case StorePlaintext:
		return "plaintext"
	case StoreReversible:
		return "reversible"
	case StoreWeakHash:
		return "weak-hash"
	case StoreStrongHash:
		return "strong-hash"
	default:
		return fmt.Sprintf("StoragePolicy(%d)", int(p))
	}
}

// HardRecoverable reports whether a breach under this policy exposes hard
// (random ten-character) passwords.
func (p StoragePolicy) HardRecoverable() bool {
	return p == StorePlaintext || p == StoreReversible
}

// PasswordPolicy is a site's password acceptance rule.
type PasswordPolicy struct {
	MinLen         int
	MaxLen         int
	RequireSpecial bool // uncommon; defeats Tripwire's pre-generated passwords
}

// Accepts reports whether pw satisfies the policy.
func (p PasswordPolicy) Accepts(pw string) bool {
	if len(pw) < p.MinLen || (p.MaxLen > 0 && len(pw) > p.MaxLen) {
		return false
	}
	if p.RequireSpecial {
		ok := false
		for i := 0; i < len(pw); i++ {
			c := pw[i]
			if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9') {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Site is one synthetic website.
type Site struct {
	Rank     int
	Domain   string
	Name     string
	Category string
	Language Language

	// Availability and eligibility.
	LoadFailure      bool // site fails to load entirely
	HasRegistration  bool // some sites have no web registration at all
	ExternalAuthOnly bool // registration only via Google/Facebook-style SSO
	RequiresPayment  bool // registration requires a credit card
	MaxEmailLen      int  // 0 = unlimited; some sites cap the address length

	// Registration-flow shape.
	MultiStage     bool         // multi-page registration form
	Captcha        captcha.Kind // bot check on the form
	ObscureRegLink bool         // reg link not discoverable from home page text
	OddFieldNames  bool         // misleading field names that defeat heuristics
	JSForm         bool         // form is script-assembled; absent from static HTML
	RegPath        string       // path of the registration page
	LinkText       string       // anchor text of the registration link

	// Backend behaviour.
	Storage       StoragePolicy
	Passwords     PasswordPolicy
	EmailVerify   bool // sends a verification email with a click-back link
	VerifyToLogin bool // account unusable until the verification link is clicked
	BrokenVerify  bool // verification links are broken (token mangled)
	WelcomeEmail  bool // sends a non-verification email on signup
	FlakyBackend  bool // accepts the POST, shows success, stores nothing
	VagueResponse bool // success page wording trips the crawler's heuristics

	// PublicMembers exposes a member directory listing usernames — the
	// §6.3.5 discussion: "Pages on their sites list usernames, and the
	// company asked if these could have been used by an attacker to
	// brute-force guess passwords."
	PublicMembers bool
	// RateLimitsLogin enables site-side login throttling; sites E and F in
	// the paper did not have it.
	RateLimitsLogin bool

	// Disclosure surface (paper §6.3): how the site can be contacted and
	// how its operators react to a breach notification.
	ContactEmail  string        // address published on /contact ("" = none)
	WhoisEmail    string        // registrant address in domain WHOIS
	WhoisExpired  bool          // WHOIS contact domain expired (site M's fate)
	NoMX          bool          // domain has no MX record at all (site J)
	Responds      bool          // operators answer disclosure mail
	ResponseDelay time.Duration // how long the first reply takes
	Reaction      Reaction      // what the response says

	seed int64 // per-site noise seed for page rendering
}

// Reaction is how a notified site responds to a breach disclosure.
type Reaction int

const (
	// ReactNone: no human response (two thirds of the paper's sites).
	ReactNone Reaction = iota
	// ReactDispute: cannot corroborate, offers no alternative explanation.
	ReactDispute
	// ReactAcknowledge: takes it seriously, admits security gaps, promises
	// (but rarely delivers) remediation.
	ReactAcknowledge
	// ReactCorroborate: confirms a known breach (site C in the paper).
	ReactCorroborate
	// ReactAutoTicket: a ticketing system swallows the report (site I).
	ReactAutoTicket
)

// String names the reaction.
func (r Reaction) String() string {
	switch r {
	case ReactNone:
		return "no response"
	case ReactDispute:
		return "disputed, no alternative explanation"
	case ReactAcknowledge:
		return "acknowledged, remediation promised"
	case ReactCorroborate:
		return "corroborated a known breach"
	case ReactAutoTicket:
		return "auto-ticket, never answered"
	default:
		return fmt.Sprintf("Reaction(%d)", int(r))
	}
}

// Eligible reports whether the site could in principle be registered on by
// an English-only automated system: it loads, is in English, has an online
// registration not gated on payment or external auth. This matches the
// paper's Table 4 notion of eligibility.
func (s *Site) Eligible() bool {
	return !s.LoadFailure &&
		s.Language == LangEnglish &&
		s.HasRegistration &&
		!s.ExternalAuthOnly &&
		!s.RequiresPayment
}

// rng returns a fresh deterministic source for rendering this site's pages.
func (s *Site) rng() *rand.Rand { return xrand.New(s.seed) }

// categories is the census of site categories; includes every category from
// the paper's Table 2 plus generic filler.
var categories = []string{
	"Deals", "Gaming", "BitTorrent", "Wallpapers", "RSS Feeds", "Marketing",
	"Horoscopes", "Classifieds", "Adult", "Vacations", "Outdoors",
	"Tourism Guide", "Press Releases", "BTC Forum", "News", "Shopping",
	"Sports", "Technology", "Music", "Video", "Social", "Education",
	"Finance", "Health", "Recipes", "Weather", "Jobs", "Real Estate",
	"Photography", "Blogging",
}

// linkTexts are the registration anchor-text variants sites use.
var linkTexts = []string{
	"Sign Up", "Register", "Create Account", "Join Now", "Create an account",
	"Sign up free", "Register now", "Get started", "Join", "New user? Sign up",
}

// regPaths are the registration URL paths English sites use.
var regPaths = []string{
	"/register", "/signup", "/join", "/account/new", "/users/new",
	"/user/register", "/create-account", "/registration",
}

// localizedRegPaths are registration paths on non-English sites; none match
// the crawler's English href heuristics.
var localizedRegPaths = map[Language][]string{
	LangChinese: {"/zhuce", "/xinyonghu", "/kaihu"},
	LangRussian: {"/registraciya", "/novyi-akkaunt", "/sozdat"},
	LangSpanish: {"/registro", "/crear-cuenta", "/unirse"},
	LangGerman:  {"/registrierung", "/konto-erstellen", "/mitglied-werden"},
	LangFrench:  {"/inscription", "/creer-compte", "/adhesion"},
}
