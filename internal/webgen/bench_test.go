package webgen

import (
	"net/http/httptest"
	"testing"

	"tripwire/internal/captcha"
)

// benchUniverse builds a small deterministic web and picks an English site
// with an ordinary (non-JS, non-SSO) registration form to serve.
func benchUniverse(b *testing.B) (*Universe, *Site) {
	b.Helper()
	cfg := DefaultConfig()
	cfg.NumSites = 200
	cfg.Seed = 7
	u := Generate(cfg)
	for _, s := range u.Sites() {
		if s.Eligible() && !s.JSForm && !s.ObscureRegLink && s.Captcha == captcha.None {
			return u, s
		}
	}
	b.Fatal("no plain eligible site in bench universe")
	return nil, nil
}

func serve(b *testing.B, u *Universe, host, path string) string {
	w := httptest.NewRecorder()
	r := httptest.NewRequest("GET", "http://"+host+path, nil)
	u.ServeHTTP(w, r)
	if w.Code != 200 {
		b.Fatalf("GET %s%s = %d", host, path, w.Code)
	}
	return w.Body.String()
}

// BenchmarkServePage measures what one crawler page-load costs the
// synthetic web: the home page (link discovery) and the registration page
// (form rendering), the two page kinds every registration attempt fetches.
func BenchmarkServePage(b *testing.B) {
	u, site := benchUniverse(b)
	b.Run("home", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			serve(b, u, site.Domain, "/")
		}
	})
	b.Run("registration", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			serve(b, u, site.Domain, site.RegPath)
		}
	})
}

// BenchmarkServePageCaptcha serves a registration page that must mint a
// fresh CAPTCHA challenge per request — the dynamic-splice path of the
// render cache.
func BenchmarkServePageCaptcha(b *testing.B) {
	cfg := DefaultConfig()
	cfg.NumSites = 400
	cfg.Seed = 7
	u := Generate(cfg)
	var site *Site
	for _, s := range u.Sites() {
		if s.Eligible() && !s.JSForm && s.Captcha == captcha.Image {
			site = s
			break
		}
	}
	if site == nil {
		b.Fatal("no image-captcha site in bench universe")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serve(b, u, site.Domain, site.RegPath)
	}
}
