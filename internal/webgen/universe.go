package webgen

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tripwire/internal/captcha"
	"tripwire/internal/obs"
)

// Mailer is the outbound-email hook sites use to deliver verification and
// welcome messages. The simulation wires this to the email provider.
type Mailer interface {
	Send(from, to, subject, body string) error
}

// MailerFunc adapts a function to the Mailer interface.
type MailerFunc func(from, to, subject, body string) error

// Send implements Mailer.
func (f MailerFunc) Send(from, to, subject, body string) error { return f(from, to, subject, body) }

// universeShards is the number of locks the universe's mutable per-domain
// state is striped over. Power of two so the shard index is a mask of the
// domain hash. 64 shards keep 16 crawl workers essentially contention-free
// while costing a few empty maps per universe.
const universeShards = 64

// stateShard holds every piece of mutable per-domain state for the domains
// that hash into it, under its own lock. All per-domain invariants (token
// counters, login-failure streaks) are confined to a single shard because
// they are keyed by domain, so splitting the former universe-wide mutex
// changes no observable behaviour — only the amount of cross-domain lock
// sharing.
type stateShard struct {
	mu         sync.Mutex
	stores     map[string]*Store
	specs      map[string]*FormSpec
	issuers    map[string]*captcha.Issuer
	pending    map[string]pendingReg // multi-stage continuations
	tokenSeq   map[string]int        // per-domain token counters
	loginFails map[string]int        // "domain|user" -> consecutive failures

	// renderMu guards rendered, the per-(site, page-kind) body cache.
	// Every cached body is a pure function of the generated site — dynamic
	// values live in slots spliced at serve time — so entries never need
	// invalidation: a site's pages cannot change after generation. A racing
	// double-compute stores identical bytes and is harmless.
	renderMu sync.RWMutex
	rendered map[string]string
}

// siteSlot lazily materializes one ranked site on first touch.
type siteSlot struct {
	once sync.Once
	site *Site
}

// Universe is the generated synthetic web: a set of ranked sites plus their
// live backends, served as an http.Handler that routes on the Host header.
//
// Sites are materialized lazily: each *Site is a pure function of
// (Config.Seed, rank), derived on first touch under a per-rank sync.Once.
// A 100k-rank universe therefore costs memory only for the ranks actually
// crawled; Sites, SiteByRank and ServeHTTP behave byte-identically to eager
// generation (lazy_test.go proves the equivalence).
type Universe struct {
	cfg   Config
	slots []siteSlot
	// materialized counts slots whose site has been derived, for the
	// O(active-sites) memory claim and the sites-materialized gauge.
	materialized atomic.Int64

	shards [universeShards]stateShard

	// renderHits/renderMisses count cachedBody outcomes. Always-on atomics
	// (two adds per page serve); Observe exposes them to a metrics registry
	// at collection time.
	renderHits   atomic.Uint64
	renderMisses atomic.Uint64

	// DisableRenderCache forces every page to be rendered from scratch.
	// Tests use it to prove cached and uncached serving are byte-identical.
	DisableRenderCache bool

	// Mailer receives site-originated email. Nil drops mail.
	Mailer Mailer
	// Now supplies timestamps for account creation; defaults to time.Now.
	Now func() time.Time
}

type pendingReg struct {
	domain   string
	username string
	email    string
	password string
}

func newUniverse(cfg Config) *Universe {
	u := &Universe{
		cfg:   cfg,
		slots: make([]siteSlot, cfg.NumSites),
		Now:   time.Now,
	}
	for i := range u.shards {
		sh := &u.shards[i]
		sh.stores = make(map[string]*Store)
		sh.specs = make(map[string]*FormSpec)
		sh.issuers = make(map[string]*captcha.Issuer)
		sh.pending = make(map[string]pendingReg)
		sh.tokenSeq = make(map[string]int)
		sh.loginFails = make(map[string]int)
		sh.rendered = make(map[string]string)
	}
	return u
}

// shardFor maps a key (normally a domain) to its state shard via FNV-1a.
func (u *Universe) shardFor(key string) *stateShard {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 0x100000001b3
	}
	return &u.shards[h&(universeShards-1)]
}

// NumSites returns the universe's total rank count without materializing
// any site.
func (u *Universe) NumSites() int { return len(u.slots) }

// MaterializedSites returns how many sites have been derived so far.
func (u *Universe) MaterializedSites() int { return int(u.materialized.Load()) }

// Sites returns all sites in rank order, materializing any that have not
// been touched yet. Prefer NumSites + SiteByRank when only a subset is
// needed — this call makes the whole universe resident. The returned slice
// is fresh, but the sites are shared; treat them as read-only.
func (u *Universe) Sites() []*Site {
	out := make([]*Site, len(u.slots))
	for i := range u.slots {
		out[i], _ = u.SiteByRank(i + 1)
	}
	return out
}

// Site returns the site with the given domain. Generated domains encode
// their rank ("site%05d.test"), so the lookup derives the rank and never
// needs a domain index.
func (u *Universe) Site(domain string) (*Site, bool) {
	host := strings.ToLower(stripPort(domain))
	rank, ok := domainRank(host)
	if !ok {
		return nil, false
	}
	s, ok := u.SiteByRank(rank)
	if !ok || s.Domain != host {
		// Rejects aliases like "site1.test" whose canonical form is
		// "site00001.test".
		return nil, false
	}
	return s, true
}

// domainRank parses the rank out of a generated domain name.
func domainRank(host string) (int, bool) {
	const prefix, suffix = "site", ".test"
	if len(host) <= len(prefix)+len(suffix) ||
		!strings.HasPrefix(host, prefix) || !strings.HasSuffix(host, suffix) {
		return 0, false
	}
	digits := host[len(prefix) : len(host)-len(suffix)]
	rank := 0
	for i := 0; i < len(digits); i++ {
		c := digits[i]
		if c < '0' || c > '9' || rank > 1<<28 {
			return 0, false
		}
		rank = rank*10 + int(c-'0')
	}
	return rank, true
}

// SiteByRank returns the site with the given 1-based rank, deriving it on
// first touch.
func (u *Universe) SiteByRank(rank int) (*Site, bool) {
	if rank < 1 || rank > len(u.slots) {
		return nil, false
	}
	sl := &u.slots[rank-1]
	sl.once.Do(func() {
		sl.site = generateSiteAt(u.cfg, rank)
		u.materialized.Add(1)
	})
	return sl.site, true
}

// Store returns (creating on first use) the account database for domain.
func (u *Universe) Store(domain string) *Store {
	sh := u.shardFor(domain)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.stores[domain]
	if !ok {
		policy := StoreWeakHash
		if site, found := u.Site(domain); found {
			policy = site.Storage
		}
		st = NewStore(policy)
		sh.stores[domain] = st
	}
	return st
}

// FormSpec returns the registration-form layout for site (cached).
func (u *Universe) FormSpec(s *Site) *FormSpec {
	sh := u.shardFor(s.Domain)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	spec, ok := sh.specs[s.Domain]
	if !ok {
		spec = buildFormSpec(s)
		sh.specs[s.Domain] = spec
	}
	return spec
}

// Issuer returns the CAPTCHA issuer for site (cached).
func (u *Universe) Issuer(s *Site) *captcha.Issuer {
	sh := u.shardFor(s.Domain)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	is, ok := sh.issuers[s.Domain]
	if !ok {
		is = captcha.NewIssuer("captcha-" + s.Domain)
		sh.issuers[s.Domain] = is
	}
	return is
}

// nextToken mints an opaque token. Counters are kept per domain — not
// globally — so a token's value depends only on the minting site's own
// history, never on how registrations at different sites interleave. That
// keeps the parallel crawl engine's output independent of worker schedule.
func (u *Universe) nextToken(domain, prefix string) string {
	sh := u.shardFor(domain)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.tokenSeq[domain]++
	return fmt.Sprintf("%s-%s-%08d", prefix, domain, sh.tokenSeq[domain])
}

// cachedBody returns the rendered body for (site, kind), computing it with
// render on a miss. Render output is deterministic per site, so concurrent
// misses may compute twice but always store the same bytes.
func (u *Universe) cachedBody(site *Site, kind string, render func() string) string {
	sh := u.shardFor(site.Domain)
	key := site.Domain + "\x00" + kind
	sh.renderMu.RLock()
	body, ok := sh.rendered[key]
	sh.renderMu.RUnlock()
	if ok {
		u.renderHits.Add(1)
		return body
	}
	u.renderMisses.Add(1)
	body = render()
	sh.renderMu.Lock()
	sh.rendered[key] = body
	sh.renderMu.Unlock()
	return body
}

// Observe exposes the universe's render-cache counters and site counts on r
// at collection time. Call once per universe after construction.
func (u *Universe) Observe(r *obs.Registry) {
	if r == nil {
		return
	}
	r.CounterFunc("tripwire_webgen_render_cache_hits_total", "Page bodies served from the render cache.", u.renderHits.Load)
	r.CounterFunc("tripwire_webgen_render_cache_misses_total", "Page bodies rendered from scratch.", u.renderMisses.Load)
	r.GaugeFunc("tripwire_webgen_sites", "Total ranked sites in the universe.", func() int64 { return int64(len(u.slots)) })
	r.GaugeFunc("tripwire_webgen_sites_materialized", "Sites derived on demand so far (lazy materialization).", u.materialized.Load)
}

// WarmRender pre-renders every site's static page bodies into the render
// cache, so first-visit render cost does not land on whichever crawl task
// happens to touch a page first. It materializes every site as a side
// effect, so it only makes sense when the whole universe will be crawled —
// a full-coverage study, or a benchmark whose timed region is the crawl.
func (u *Universe) WarmRender() {
	if u.DisableRenderCache {
		return
	}
	for _, site := range u.Sites() {
		if site.LoadFailure {
			continue
		}
		s := site
		u.cachedBody(s, "home", func() string { return renderHome(s) })
		u.cachedBody(s, "contact", func() string { return renderContact(s) })
		u.cachedBody(s, "login", func() string { return renderLogin(s) })
		u.cachedBody(s, "404", func() string {
			return pageShell(s, "Not found", "<p>Page not found.</p>")
		})
		if s.HasRegistration {
			u.cachedBody(s, "registration", func() string {
				return renderRegistrationTemplate(s, u.FormSpec(s))
			})
			u.cachedBody(s, "welcome", func() string { return renderOutcome(s, true, "") })
		}
	}
}

// servePage writes a static page body, serving it from the render cache
// unless caching is disabled.
func (u *Universe) servePage(w http.ResponseWriter, site *Site, kind string, render func() string) {
	if u.DisableRenderCache {
		io.WriteString(w, render())
		return
	}
	io.WriteString(w, u.cachedBody(site, kind, render))
}

// registrationPage produces the GET registration page: the static template
// from the cache with this serve's dynamic values spliced in.
func (u *Universe) registrationPage(site *Site) string {
	if u.DisableRenderCache {
		return renderRegistration(site, u.FormSpec(site), u.Issuer(site))
	}
	tpl := u.cachedBody(site, "registration", func() string {
		return renderRegistrationTemplate(site, u.FormSpec(site))
	})
	return spliceDynamic(tpl, site, u.Issuer(site))
}

func stripPort(host string) string {
	if i := strings.LastIndexByte(host, ':'); i >= 0 && !strings.Contains(host[i:], "]") {
		return host[:i]
	}
	return host
}

// ServeHTTP routes requests by Host header to the owning site.
func (u *Universe) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	site, ok := u.Site(r.Host)
	if !ok {
		http.Error(w, "no such site", http.StatusBadGateway)
		return
	}
	if site.LoadFailure {
		http.Error(w, "service unavailable", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	path := r.URL.Path
	switch {
	case path == "/" || path == "/about":
		u.servePage(w, site, "home", func() string { return renderHome(site) })
	case path == "/contact":
		u.servePage(w, site, "contact", func() string { return renderContact(site) })
	case path == "/members" && site.PublicMembers:
		u.handleMembers(w, site)
	case path == "/login" && r.Method == http.MethodGet:
		u.servePage(w, site, "login", func() string { return renderLogin(site) })
	case path == "/login" && r.Method == http.MethodPost:
		u.handleLogin(w, r, site)
	case path == "/verify":
		u.handleVerify(w, r, site)
	case strings.HasPrefix(path, "/captcha/"):
		// The synthetic image "renders" its answer the way real CAPTCHA
		// pixels do; only solving services read it back out.
		id := strings.TrimSuffix(strings.TrimPrefix(path, "/captcha/"), ".png")
		ch := captcha.Challenge{ID: id, Kind: captcha.Image}
		w.Header().Set("Content-Type", "image/png")
		io.WriteString(w, u.Issuer(site).RenderImage(ch))
	case site.HasRegistration && path == site.RegPath && r.Method == http.MethodGet:
		io.WriteString(w, u.registrationPage(site))
	case site.HasRegistration && path == site.RegPath && r.Method == http.MethodPost:
		u.handleRegister(w, r, site)
	case site.HasRegistration && site.MultiStage && path == site.RegPath+"/complete" && r.Method == http.MethodPost:
		u.handleRegisterComplete(w, r, site)
	default:
		w.WriteHeader(http.StatusNotFound)
		u.servePage(w, site, "404", func() string {
			return pageShell(site, "Not found", "<p>Page not found.</p>")
		})
	}
}

// handleRegister validates a registration submission against the site's
// form spec and either creates the account, advances to step two, or
// renders a validation failure.
func (u *Universe) handleRegister(w http.ResponseWriter, r *http.Request, site *Site) {
	if site.ExternalAuthOnly {
		w.WriteHeader(http.StatusNotFound)
		io.WriteString(w, pageShell(site, "Not found", "<p>Registration is handled by our identity partner.</p>"))
		return
	}
	if err := r.ParseForm(); err != nil {
		io.WriteString(w, renderOutcome(site, false, "malformed submission"))
		return
	}
	spec := u.FormSpec(site)
	get := func(kind FieldKind) string {
		if f, ok := spec.Field(kind); ok {
			return strings.TrimSpace(r.PostFormValue(f.Name))
		}
		return ""
	}

	if get(FieldCSRF) != csrfToken(site.Domain) {
		io.WriteString(w, renderOutcome(site, false, "session expired, please reload the form"))
		return
	}
	for _, f := range spec.Fields {
		if !f.Required || f.Kind == FieldCSRF || f.Kind == FieldCaptcha {
			continue
		}
		if strings.TrimSpace(r.PostFormValue(f.Name)) == "" {
			io.WriteString(w, renderOutcome(site, false, "missing required field: "+f.Label))
			return
		}
	}

	email := get(FieldEmail)
	if !strings.Contains(email, "@") || strings.Contains(email, " ") {
		io.WriteString(w, renderOutcome(site, false, "invalid email address"))
		return
	}
	if site.MaxEmailLen > 0 && len(email) > site.MaxEmailLen {
		io.WriteString(w, renderOutcome(site, false, fmt.Sprintf("email address must be at most %d characters", site.MaxEmailLen)))
		return
	}
	password := get(FieldPassword)
	if !site.Passwords.Accepts(password) {
		io.WriteString(w, renderOutcome(site, false, "password does not meet requirements"))
		return
	}
	if _, hasConfirm := spec.Field(FieldConfirm); hasConfirm && get(FieldConfirm) != password {
		io.WriteString(w, renderOutcome(site, false, "passwords do not match"))
		return
	}
	if site.Captcha != captcha.None {
		ch := captcha.Challenge{ID: r.PostFormValue("captcha_id"), Kind: site.Captcha}
		answer := get(FieldCaptcha)
		if site.Captcha == captcha.Interactive {
			answer = r.PostFormValue("captcha_token")
		}
		if !u.Issuer(site).Verify(ch, answer) {
			io.WriteString(w, renderOutcome(site, false, "the verification code was incorrect"))
			return
		}
	}

	username := get(FieldUsername)
	if username == "" {
		username = email[:strings.IndexByte(email, '@')]
	}

	if site.MultiStage {
		cont := u.nextToken(site.Domain, "cont")
		sh := u.shardFor(site.Domain)
		sh.mu.Lock()
		sh.pending[cont] = pendingReg{domain: site.Domain, username: username, email: email, password: password}
		sh.mu.Unlock()
		io.WriteString(w, renderStep2(site, profileFormSpec(site), cont))
		return
	}
	u.finishRegistration(w, site, username, email, password)
}

// handleRegisterComplete finishes a multi-stage registration.
func (u *Universe) handleRegisterComplete(w http.ResponseWriter, r *http.Request, site *Site) {
	if err := r.ParseForm(); err != nil {
		io.WriteString(w, renderOutcome(site, false, "malformed submission"))
		return
	}
	cont := r.PostFormValue("continuation")
	sh := u.shardFor(site.Domain)
	sh.mu.Lock()
	pend, ok := sh.pending[cont]
	if ok {
		delete(sh.pending, cont)
	}
	sh.mu.Unlock()
	if !ok || pend.domain != site.Domain {
		io.WriteString(w, renderOutcome(site, false, "registration session expired"))
		return
	}
	spec := profileFormSpec(site)
	for _, f := range spec.Fields {
		if !f.Required || f.Kind == FieldCSRF {
			continue
		}
		if strings.TrimSpace(r.PostFormValue(f.Name)) == "" {
			io.WriteString(w, renderOutcome(site, false, "missing required field: "+f.Label))
			return
		}
	}
	u.finishRegistration(w, site, pend.username, pend.email, pend.password)
}

func (u *Universe) finishRegistration(w http.ResponseWriter, site *Site, username, email, password string) {
	if site.FlakyBackend {
		// The paper's "OK submission, 59% valid" / "Email received, 82%
		// valid" residue: the site renders success — and its decoupled
		// marketing pipeline may even send a welcome mail — but the account
		// store persists nothing.
		if site.WelcomeEmail {
			u.sendMail(site, email,
				"Welcome to "+site.Name,
				fmt.Sprintf("Hi!\r\n\r\nThanks for joining %s. We are glad to have you.\r\n\r\nThe %s team\r\n", site.Name, site.Name))
		}
		u.servePage(w, site, "welcome", func() string { return renderOutcome(site, true, "") })
		return
	}
	st := u.Store(site.Domain)
	salt := ""
	if site.Storage == StoreStrongHash {
		salt = u.nextToken(site.Domain, "salt")
	}
	if _, err := st.Create(username, email, password, salt, u.Now()); err != nil {
		io.WriteString(w, renderOutcome(site, false, "that username is already taken"))
		return
	}
	switch {
	case site.EmailVerify:
		tok := u.nextToken(site.Domain, "vfy")
		st.IssueVerifyToken(username, tok)
		if site.BrokenVerify {
			// The emailed link carries a mangled token: clicking it never
			// verifies the account (one source of the paper's ~2% failures
			// in the Email-verified bin).
			tok = "broken-" + tok
		}
		u.sendMail(site, email,
			"Please verify your account at "+site.Name,
			fmt.Sprintf("Welcome to %s!\r\n\r\nPlease confirm your email address by clicking the link below:\r\nhttp://%s/verify?token=%s\r\n\r\nIf you did not register, ignore this message.\r\n", site.Name, site.Domain, tok))
	case site.WelcomeEmail:
		u.sendMail(site, email,
			"Welcome to "+site.Name,
			fmt.Sprintf("Hi!\r\n\r\nThanks for joining %s. We are glad to have you.\r\n\r\nThe %s team\r\n", site.Name, site.Name))
	}
	u.servePage(w, site, "welcome", func() string { return renderOutcome(site, true, "") })
}

func (u *Universe) sendMail(site *Site, to, subject, body string) {
	if u.Mailer == nil {
		return
	}
	// Errors are deliberately dropped: a site does not care whether its
	// welcome mail bounced, and neither does the simulation.
	_ = u.Mailer.Send("noreply@"+site.Domain, to, subject, body)
}

// DomainWhois is a domain-registration WHOIS record (distinct from the IP
// WHOIS in internal/geo). The disclosure process emails the registrant
// listed here (paper §6.3.1).
type DomainWhois struct {
	Domain     string
	Registrant string
	// Expired marks registrant addresses whose domain has lapsed and been
	// re-registered by a squatter (the paper's site M).
	Expired bool
}

// Whois returns the domain-WHOIS record for host.
func (u *Universe) Whois(host string) (DomainWhois, bool) {
	site, ok := u.Site(host)
	if !ok {
		return DomainWhois{}, false
	}
	return DomainWhois{Domain: site.Domain, Registrant: site.WhoisEmail, Expired: site.WhoisExpired}, true
}

// SearchRegistrationPages plays the role of a public search engine's index
// for the synthetic web (the paper's §6.2.2 suggestion: "it may be possible
// to rely on search engines to help locate the registration pages"). A
// search engine has crawled every reachable page, including ones linked
// only through image-text anchors, so it can answer "registration page for
// <domain>" queries the on-page text heuristics cannot.
func (u *Universe) SearchRegistrationPages(host string) []string {
	site, ok := u.Site(host)
	if !ok || site.LoadFailure || !site.HasRegistration || site.ExternalAuthOnly {
		return nil
	}
	return []string{"http://" + site.Domain + site.RegPath}
}

// handleVerify consumes a verification token.
func (u *Universe) handleVerify(w http.ResponseWriter, r *http.Request, site *Site) {
	tok := r.URL.Query().Get("token")
	if u.Store(site.Domain).Verify(tok) {
		u.servePage(w, site, "verified", func() string {
			return pageShell(site, "Verified", "<p>Your email address has been verified. Thank you!</p>")
		})
		return
	}
	w.WriteHeader(http.StatusBadRequest)
	u.servePage(w, site, "verify-invalid", func() string {
		return pageShell(site, "Invalid token", "<p>This verification link is invalid or has expired.</p>")
	})
}

// handleMembers serves the public member directory: one list item per
// registered username. Attackers harvest these for brute-force targeting.
func (u *Universe) handleMembers(w http.ResponseWriter, site *Site) {
	var b strings.Builder
	b.WriteString("<h2>Members</h2>\n<ul class=\"members\">\n")
	for _, e := range u.Store(site.Domain).Dump() {
		fmt.Fprintf(&b, "<li class=\"member\">%s</li>\n", escape(e.Username))
	}
	b.WriteString("</ul>\n")
	io.WriteString(w, pageShell(site, "Members", b.String()))
}

// loginThrottled applies the site's own brute-force defence (when it has
// one): more than 10 consecutive failures against one account return 429s.
// Sites without rate limiting — the paper's sites E and F — never throttle.
func (u *Universe) loginThrottled(site *Site, user string) bool {
	if !site.RateLimitsLogin {
		return false
	}
	sh := u.shardFor(site.Domain)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.loginFails[site.Domain+"|"+strings.ToLower(user)] > 10
}

func (u *Universe) noteLogin(site *Site, user string, ok bool) {
	sh := u.shardFor(site.Domain)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	key := site.Domain + "|" + strings.ToLower(user)
	if ok {
		delete(sh.loginFails, key)
	} else {
		sh.loginFails[key]++
	}
}

// handleLogin authenticates a username/email + password pair. The
// registration-validation probes in the simulation use this endpoint the
// way the authors manually tested sampled accounts (paper §5.2.3).
func (u *Universe) handleLogin(w http.ResponseWriter, r *http.Request, site *Site) {
	if err := r.ParseForm(); err != nil {
		io.WriteString(w, renderOutcome(site, false, "malformed submission"))
		return
	}
	login := strings.TrimSpace(r.PostFormValue("login"))
	password := r.PostFormValue("password")
	if u.loginThrottled(site, login) {
		w.WriteHeader(http.StatusTooManyRequests)
		io.WriteString(w, pageShell(site, "Slow down", "<p class=\"error\">Too many attempts. Try again later.</p>"))
		return
	}
	st := u.Store(site.Domain)
	acct, ok := st.Lookup(login)
	if !ok && strings.Contains(login, "@") {
		// Allow login by email address.
		for _, e := range st.Dump() {
			if strings.EqualFold(e.Email, login) {
				acct, ok = st.Lookup(e.Username)
				break
			}
		}
	}
	if !ok || !st.CheckPassword(acct.Username, password) {
		u.noteLogin(site, login, false)
		w.WriteHeader(http.StatusUnauthorized)
		io.WriteString(w, pageShell(site, "Login failed", "<p class=\"error\">Invalid username or password.</p>"))
		return
	}
	u.noteLogin(site, login, true)
	if site.VerifyToLogin && !acct.Verified {
		w.WriteHeader(http.StatusForbidden)
		io.WriteString(w, pageShell(site, "Not verified", "<p class=\"error\">Please verify your email address before logging in.</p>"))
		return
	}
	// The landing page after login doubles as the account overview and
	// shows the address on file — which is how an attacker who guessed a
	// site password learns the email account to pivot to (§6.3.5).
	io.WriteString(w, pageShell(site, "Welcome", fmt.Sprintf(
		"<p>%s, %s!</p>\n<p class=\"account-email\">Email on file: %s</p>",
		site.lex().welcome, escape(acct.Username), escape(acct.Email))))
}
