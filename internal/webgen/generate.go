package webgen

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"tripwire/internal/captcha"
	"tripwire/internal/xrand"
)

// Config controls universe generation. The zero value is not useful; start
// from DefaultConfig.
type Config struct {
	// NumSites is the number of ranked sites to generate.
	NumSites int
	// Seed makes generation reproducible.
	Seed int64

	// Rate knobs, expressed as probabilities. Defaults are calibrated to
	// the paper's Table 4 manual census (rows at ranks 1, 1,000, 10,000 and
	// 100,000) and Figure 3.
	LoadFailureTop, LoadFailureTail       float64 // 3% -> ~8%
	NonEnglish                            float64 // ~44%
	NoRegistrationTop, NoRegistrationTail float64 // 7% -> ~29%
	IneligibleOther                       float64 // ~5%: payment / external auth / short email cap

	// Among eligible sites with forms (paper §7.2):
	CaptchaRate    float64 // ~19% of sites with registration forms
	MultiStageRate float64 // ~10%
	ObscureLink    float64 // registration page not discoverable
	OddFields      float64 // field names that defeat heuristics
	JSFormRate     float64 // form assembled by script; invisible statically
	SpecialCharPwd float64 // password policy requiring special chars

	// Backend behaviour rates.
	EmailVerifyRate  float64 // sites that send a verification email
	WelcomeEmailRate float64 // sites that send some non-verification email
	FlakyBackendRate float64 // accept the POST but store nothing
	VagueResponse    float64 // success page that trips failure heuristics

	// Password storage mix (must sum to 1). Roughly half of detected
	// compromises in Table 2 exposed hard passwords, implying widespread
	// plaintext/reversible storage in the tail.
	PlaintextFrac, ReversibleFrac, WeakHashFrac, StrongHashFrac float64
}

// DefaultConfig returns the calibrated configuration.
func DefaultConfig() Config {
	return Config{
		NumSites:           33634,
		Seed:               1,
		LoadFailureTop:     0.03,
		LoadFailureTail:    0.08,
		NonEnglish:         0.443,
		NoRegistrationTop:  0.07,
		NoRegistrationTail: 0.33,
		IneligibleOther:    0.05,
		CaptchaRate:        0.19,
		MultiStageRate:     0.10,
		ObscureLink:        0.04,
		OddFields:          0.34,
		JSFormRate:         0.48,
		SpecialCharPwd:     0.015,
		EmailVerifyRate:    0.47,
		WelcomeEmailRate:   0.06,
		FlakyBackendRate:   0.17,
		VagueResponse:      0.08,
		PlaintextFrac:      0.28,
		ReversibleFrac:     0.12,
		WeakHashFrac:       0.30,
		StrongHashFrac:     0.30,
	}
}

// lerp interpolates a rank-dependent rate: rank 1 uses top, rank numSites
// uses tail, linearly in between.
func lerp(top, tail float64, rank, numSites int) float64 {
	return lerpPow(top, tail, rank, numSites, 1)
}

// lerpPow interpolates with a concave exponent (<1 rises fast then
// flattens), matching the paper's Table 4 observation that registration
// availability collapses within the first few thousand ranks.
func lerpPow(top, tail float64, rank, numSites int, exp float64) float64 {
	if numSites <= 1 {
		return top
	}
	frac := float64(rank-1) / float64(numSites-1)
	frac = math.Pow(frac, exp)
	return top + (tail-top)*frac
}

// Generate builds a deterministic universe of Config.NumSites sites. Sites
// are not materialized here: each one is derived on first touch as a pure
// function of (cfg.Seed, rank), so generating a 100k-rank universe is O(1)
// in site work and memory until ranks are actually visited.
func Generate(cfg Config) *Universe {
	if cfg.NumSites <= 0 {
		panic("webgen: Config.NumSites must be positive")
	}
	if sum := cfg.PlaintextFrac + cfg.ReversibleFrac + cfg.WeakHashFrac + cfg.StrongHashFrac; sum < 0.999 || sum > 1.001 {
		panic(fmt.Sprintf("webgen: storage fractions sum to %.3f, want 1", sum))
	}
	return newUniverse(cfg)
}

// siteStream tags the per-rank site-generation RNG stream in xrand.Mix
// derivations, keeping it independent of the crawl engine's task streams.
const siteStream int64 = 0x517e

// generateSiteAt derives the rank's site as a pure function of
// (cfg.Seed, rank). Lazy materialization and the eager equivalence test
// both call exactly this, so touch order cannot influence a site's
// attributes.
func generateSiteAt(cfg Config, rank int) *Site {
	return generateSite(xrand.New(xrand.Mix(cfg.Seed, int64(rank), siteStream)), cfg, rank)
}

func generateSite(rng *rand.Rand, cfg Config, rank int) *Site {
	s := &Site{
		Rank:     rank,
		Domain:   fmt.Sprintf("site%05d.test", rank),
		Category: categories[rng.Intn(len(categories))],
		Language: LangEnglish,
		seed:     rng.Int63(),
	}
	s.Name = siteName(rng, s.Category, rank)

	if rng.Float64() < lerp(cfg.LoadFailureTop, cfg.LoadFailureTail, rank, cfg.NumSites) {
		s.LoadFailure = true
		return s
	}
	if rng.Float64() < cfg.NonEnglish {
		s.Language = pickLanguage(rng)
	}
	s.HasRegistration = rng.Float64() >= lerpPow(cfg.NoRegistrationTop, cfg.NoRegistrationTail, rank, cfg.NumSites, 0.25)
	if !s.HasRegistration {
		return s
	}
	if rng.Float64() < cfg.IneligibleOther {
		// Split ineligibility causes: payment, SSO-only, or a short email cap
		// (paper §6.2.3: one site capped addresses below 16 characters).
		switch rng.Intn(3) {
		case 0:
			s.RequiresPayment = true
		case 1:
			s.ExternalAuthOnly = true
		default:
			s.MaxEmailLen = 12 + rng.Intn(6) // 12-17: Tripwire addresses are ~18+
		}
	}

	// Registration flow shape. Non-English sites use localized paths, so
	// neither the anchor text nor the href gives the English-only
	// heuristics a foothold — such sites are ineligible end to end, as in
	// the paper's Table 4.
	if s.Language == LangEnglish {
		s.RegPath = regPaths[rng.Intn(len(regPaths))]
	} else {
		s.RegPath = localizedRegPaths[s.Language][rng.Intn(len(localizedRegPaths[s.Language]))]
	}
	s.LinkText = linkTexts[rng.Intn(len(linkTexts))]
	if rng.Float64() < cfg.MultiStageRate {
		s.MultiStage = true
	}
	if r := rng.Float64(); r < cfg.CaptchaRate {
		// Mix within CAPTCHA sites: mostly image, some knowledge, some
		// interactive (unsolvable).
		switch {
		case r < cfg.CaptchaRate*0.55:
			s.Captcha = captcha.Image
		case r < cfg.CaptchaRate*0.80:
			s.Captcha = captcha.Knowledge
		default:
			s.Captcha = captcha.Interactive
		}
	}
	s.ObscureRegLink = rng.Float64() < cfg.ObscureLink
	if s.ObscureRegLink {
		// The registration page also hides behind an opaque path, so the
		// href heuristic has nothing to match either (paper §6.2.2: pages
		// "not obvious based on the text of the page").
		s.RegPath = fmt.Sprintf("/p/%08x", rng.Uint32())
	}
	s.OddFieldNames = rng.Float64() < cfg.OddFields
	s.JSForm = rng.Float64() < cfg.JSFormRate

	// Password policy: nearly every site permits 8-character passwords;
	// many require at least 8 (paper §4.1.2).
	s.Passwords = PasswordPolicy{MinLen: 6 + 2*rng.Intn(2), MaxLen: 0}
	if rng.Float64() < 0.10 {
		s.Passwords.MaxLen = 12 + rng.Intn(20)
	}
	s.Passwords.RequireSpecial = rng.Float64() < cfg.SpecialCharPwd

	// Backend behaviour.
	s.EmailVerify = rng.Float64() < cfg.EmailVerifyRate
	s.VerifyToLogin = s.EmailVerify && rng.Float64() < 0.6
	s.BrokenVerify = s.EmailVerify && rng.Float64() < 0.025
	if !s.EmailVerify {
		s.WelcomeEmail = rng.Float64() < cfg.WelcomeEmailRate/(1-cfg.EmailVerifyRate)
	}
	switch {
	case s.EmailVerify:
		// Verification implies a working pipeline; near-zero flakiness.
	case s.WelcomeEmail:
		// Paper: "Email received" accounts were valid 82% of the time.
		s.FlakyBackend = rng.Float64() < 0.18
	default:
		s.FlakyBackend = rng.Float64() < cfg.FlakyBackendRate/(1-cfg.EmailVerifyRate-cfg.WelcomeEmailRate)
	}
	s.VagueResponse = rng.Float64() < cfg.VagueResponse

	// Storage policy.
	r := rng.Float64()
	switch {
	case r < cfg.PlaintextFrac:
		s.Storage = StorePlaintext
	case r < cfg.PlaintextFrac+cfg.ReversibleFrac:
		s.Storage = StoreReversible
	case r < cfg.PlaintextFrac+cfg.ReversibleFrac+cfg.WeakHashFrac:
		s.Storage = StoreWeakHash
	default:
		s.Storage = StoreStrongHash
	}

	s.PublicMembers = rng.Float64() < 0.35
	s.RateLimitsLogin = rng.Float64() < 0.55

	generateDisclosureSurface(rng, s)
	return s
}

// generateDisclosureSurface rolls the site's §6.3 contactability and
// response profile. Rates follow the paper: a third of notified sites
// responded; one had no MX record; one's WHOIS contact pointed at an
// expired domain; one routed reports into a ticketing system.
func generateDisclosureSurface(rng *rand.Rand, s *Site) {
	if rng.Float64() < 0.80 {
		s.ContactEmail = pickFrom(rng, []string{"contact", "info", "admin", "hello"}) + "@" + s.Domain
	}
	s.WhoisEmail = "registrant@" + s.Domain
	s.WhoisExpired = rng.Float64() < 0.05
	s.NoMX = rng.Float64() < 0.05
	s.Responds = !s.NoMX && rng.Float64() < 0.37
	if s.Responds {
		// Observed first-response latencies ranged from 10 minutes to six
		// days.
		s.ResponseDelay = time.Duration(10+rng.Intn(8600)) * time.Minute
		r := rng.Float64()
		switch {
		case r < 0.45:
			s.Reaction = ReactDispute
		case r < 0.80:
			s.Reaction = ReactAcknowledge
		case r < 0.92:
			s.Reaction = ReactCorroborate
		default:
			s.Reaction = ReactAutoTicket
		}
	}
}

func pickLanguage(rng *rand.Rand) Language {
	// Non-English mix: Chinese-heavy, then Russian, per the paper's missed
	// breaches (§6.2.1: six Chinese, one Russian of seven non-English).
	r := rng.Float64()
	switch {
	case r < 0.35:
		return LangChinese
	case r < 0.55:
		return LangRussian
	case r < 0.72:
		return LangSpanish
	case r < 0.87:
		return LangGerman
	default:
		return LangFrench
	}
}

var nameAdjectives = []string{
	"Daily", "Super", "Mega", "Prime", "Global", "Rapid", "Smart", "Epic",
	"Ultra", "Metro", "Coastal", "Summit", "Nova", "Atlas", "Pioneer",
}

func siteName(rng *rand.Rand, category string, rank int) string {
	return fmt.Sprintf("%s %s %d", nameAdjectives[rng.Intn(len(nameAdjectives))], category, rank)
}
