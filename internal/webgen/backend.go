package webgen

import (
	"crypto/md5"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
	"time"
)

// Account is one stored user record at a site. The stored credential is
// encoded per the site's StoragePolicy; no plaintext is retained unless the
// policy itself is plaintext, so a breach dump exposes exactly what a real
// dump would.
type Account struct {
	Username string
	Email    string
	Stored   string // policy-encoded password
	Salt     string // non-empty only for StoreStrongHash
	Created  time.Time
	Verified bool
}

// Store is a site's account database.
type Store struct {
	mu       sync.Mutex
	policy   StoragePolicy
	accounts map[string]*Account // key: lower-case username
	byToken  map[string]string   // verification token -> username
}

// NewStore returns an empty store with the given policy.
func NewStore(policy StoragePolicy) *Store {
	return &Store{
		policy:   policy,
		accounts: make(map[string]*Account),
		byToken:  make(map[string]string),
	}
}

// Policy returns the store's password-storage policy.
func (st *Store) Policy() StoragePolicy { return st.policy }

// reversibleKey is the fixed key of the "easily-reversed" homebrew scheme
// (StoreReversible). It is deliberately public: that is the point.
const reversibleKey = "s3cr3t-k3y"

// EncodePassword encodes pw under policy with salt (used only by
// StoreStrongHash).
func EncodePassword(policy StoragePolicy, pw, salt string) string {
	switch policy {
	case StorePlaintext:
		return pw
	case StoreReversible:
		return hex.EncodeToString(xorKey([]byte(pw), reversibleKey))
	case StoreWeakHash:
		sum := md5.Sum([]byte(pw))
		return hex.EncodeToString(sum[:])
	case StoreStrongHash:
		return strongHash(pw, salt)
	default:
		panic(fmt.Sprintf("webgen: unknown storage policy %v", policy))
	}
}

// DecodeReversible inverts the StoreReversible encoding; it is what an
// attacker who has read the site's source does with a dump.
func DecodeReversible(stored string) (string, bool) {
	raw, err := hex.DecodeString(stored)
	if err != nil {
		return "", false
	}
	return string(xorKey(raw, reversibleKey)), true
}

func xorKey(b []byte, key string) []byte {
	out := make([]byte, len(b))
	for i := range b {
		out[i] = b[i] ^ key[i%len(key)]
	}
	return out
}

// StrongHashRounds is the iteration count of the salted hash. Small enough
// to keep simulations fast, large enough that the dictionary bench shows
// the expected plaintext-vs-hashed cost asymmetry.
const StrongHashRounds = 128

func strongHash(pw, salt string) string {
	h := []byte(salt + pw)
	for i := 0; i < StrongHashRounds; i++ {
		sum := sha256.Sum256(h)
		h = sum[:]
	}
	return hex.EncodeToString(h)
}

// Create adds an account. It fails if the username is taken.
func (st *Store) Create(username, email, password, salt string, now time.Time) (*Account, error) {
	key := strings.ToLower(username)
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, dup := st.accounts[key]; dup {
		return nil, fmt.Errorf("webgen: username %q already registered", username)
	}
	acct := &Account{
		Username: username,
		Email:    email,
		Stored:   EncodePassword(st.policy, password, salt),
		Salt:     salt,
		Created:  now,
	}
	st.accounts[key] = acct
	return acct, nil
}

// Lookup returns the account for username, if any.
func (st *Store) Lookup(username string) (*Account, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	a, ok := st.accounts[strings.ToLower(username)]
	return a, ok
}

// CheckPassword verifies a login attempt against the stored credential.
func (st *Store) CheckPassword(username, password string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	a, ok := st.accounts[strings.ToLower(username)]
	if !ok {
		return false
	}
	return a.Stored == EncodePassword(st.policy, password, a.Salt)
}

// IssueVerifyToken associates a fresh verification token with username.
func (st *Store) IssueVerifyToken(username, token string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.byToken[token] = strings.ToLower(username)
}

// Verify consumes token, marking the matching account verified. It reports
// whether the token was valid.
func (st *Store) Verify(token string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	user, ok := st.byToken[token]
	if !ok {
		return false
	}
	delete(st.byToken, token)
	if a, ok := st.accounts[user]; ok {
		a.Verified = true
		return true
	}
	return false
}

// Len returns the number of accounts.
func (st *Store) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.accounts)
}

// DumpEntry is one row of a breached account database: exactly the fields
// an attacker obtains.
type DumpEntry struct {
	Username string
	Email    string
	Stored   string
	Salt     string
	Policy   StoragePolicy
}

// Dump returns the full account database as an attacker would exfiltrate
// it. The returned slice is a snapshot ordered by username.
func (st *Store) Dump() []DumpEntry {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]DumpEntry, 0, len(st.accounts))
	for _, a := range st.accounts {
		out = append(out, DumpEntry{
			Username: a.Username,
			Email:    a.Email,
			Stored:   a.Stored,
			Salt:     a.Salt,
			Policy:   st.policy,
		})
	}
	sortDump(out)
	return out
}

func sortDump(d []DumpEntry) {
	for i := 1; i < len(d); i++ {
		for j := i; j > 0 && d[j].Username < d[j-1].Username; j-- {
			d[j], d[j-1] = d[j-1], d[j]
		}
	}
}
