package webgen

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestUniverseStateRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := &UniverseState{NumSites: 1 + rng.Intn(100000)}
		rank := 0
		for {
			rank += 1 + rng.Intn(1000)
			if rank > st.NumSites || rng.Intn(10) == 0 {
				break
			}
			st.Materialized = append(st.Materialized, rank)
		}
		data := EncodeUniverseState(st)
		got, err := DecodeUniverseState(data)
		if err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		if !reflect.DeepEqual(got, st) {
			t.Logf("mismatch: got %+v want %+v", got, st)
			return false
		}
		return bytes.Equal(EncodeUniverseState(got), data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestUniverseExportTracksMaterialization pins the export against the
// lazy substrate: only touched ranks appear, in order.
func TestUniverseExportTracksMaterialization(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumSites = 500
	cfg.Seed = 3
	u := Generate(cfg)
	for _, rank := range []int{401, 7, 99} {
		if _, ok := u.SiteByRank(rank); !ok {
			t.Fatalf("rank %d missing", rank)
		}
	}
	st := u.ExportState()
	if st.NumSites != 500 || !reflect.DeepEqual(st.Materialized, []int{7, 99, 401}) {
		t.Fatalf("export = %+v", st)
	}
	got, err := DecodeUniverseState(EncodeUniverseState(st))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, st) {
		t.Fatal("universe export did not survive a codec round trip")
	}
}

// TestUniverseStateRejectsBadRanks pins the decoder's range checks.
func TestUniverseStateRejectsBadRanks(t *testing.T) {
	st := &UniverseState{NumSites: 10, Materialized: []int{3, 9}}
	data := EncodeUniverseState(st)
	// Corrupt the second delta so ranks run past NumSites.
	bad := bytes.Clone(data)
	bad[len(bad)-1] = 200
	if _, err := DecodeUniverseState(bad); err == nil {
		t.Fatal("out-of-range rank decoded without error")
	}
}
