package webgen

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"tripwire/internal/captcha"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.NumSites = 500
	return cfg
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallConfig())
	b := Generate(smallConfig())
	for i, sa := range a.Sites() {
		sb := b.Sites()[i]
		if sa.Domain != sb.Domain || sa.Language != sb.Language || sa.Storage != sb.Storage ||
			sa.RegPath != sb.RegPath || sa.Captcha != sb.Captcha {
			t.Fatalf("site %d differs across identical generations", i)
		}
	}
}

func TestGenerateAttributeRates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumSites = 10000
	u := Generate(cfg)
	var loadFail, nonEnglish, noReg, eligible int
	for _, s := range u.Sites() {
		if s.LoadFailure {
			loadFail++
		}
		if s.Language != LangEnglish {
			nonEnglish++
		}
		if !s.LoadFailure && !s.HasRegistration {
			noReg++
		}
		if s.Eligible() {
			eligible++
		}
	}
	n := float64(cfg.NumSites)
	if f := float64(nonEnglish) / n; f < 0.35 || f > 0.52 {
		t.Errorf("non-English rate %.2f out of calibration band (~0.44)", f)
	}
	if f := float64(loadFail) / n; f < 0.02 || f > 0.12 {
		t.Errorf("load-failure rate %.2f out of band", f)
	}
	if f := float64(eligible) / n; f < 0.20 || f > 0.50 {
		t.Errorf("eligible fraction %.2f out of band (paper: ~36%%)", f)
	}
}

func TestGenerateBadStorageFractionsPanics(t *testing.T) {
	cfg := smallConfig()
	cfg.PlaintextFrac = 0.9 // sums > 1
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad storage fractions")
		}
	}()
	Generate(cfg)
}

func TestPasswordEncodingRoundTrip(t *testing.T) {
	pw := "Website1"
	if EncodePassword(StorePlaintext, pw, "") != pw {
		t.Error("plaintext encoding should be identity")
	}
	enc := EncodePassword(StoreReversible, pw, "")
	dec, ok := DecodeReversible(enc)
	if !ok || dec != pw {
		t.Errorf("reversible round-trip: got %q, %v", dec, ok)
	}
	weak := EncodePassword(StoreWeakHash, pw, "")
	if weak == pw || len(weak) != 32 {
		t.Errorf("weak hash %q malformed", weak)
	}
	s1 := EncodePassword(StoreStrongHash, pw, "saltA")
	s2 := EncodePassword(StoreStrongHash, pw, "saltB")
	if s1 == s2 {
		t.Error("strong hash ignores salt")
	}
	if s1 != EncodePassword(StoreStrongHash, pw, "saltA") {
		t.Error("strong hash not deterministic")
	}
}

func TestStoreCreateLookupCheck(t *testing.T) {
	now := time.Now()
	for _, policy := range []StoragePolicy{StorePlaintext, StoreReversible, StoreWeakHash, StoreStrongHash} {
		st := NewStore(policy)
		if _, err := st.Create("Alice", "alice@x.test", "Website1", "s1", now); err != nil {
			t.Fatalf("%v: create: %v", policy, err)
		}
		if _, err := st.Create("alice", "other@x.test", "pw", "s2", now); err == nil {
			t.Fatalf("%v: duplicate username accepted (case-insensitive)", policy)
		}
		if !st.CheckPassword("ALICE", "Website1") {
			t.Fatalf("%v: correct password rejected", policy)
		}
		if st.CheckPassword("alice", "Website2") {
			t.Fatalf("%v: wrong password accepted", policy)
		}
	}
}

func TestStoreVerifyToken(t *testing.T) {
	st := NewStore(StoreWeakHash)
	st.Create("bob", "bob@x.test", "pw123456", "", time.Now())
	st.IssueVerifyToken("bob", "tok1")
	if st.Verify("wrong") {
		t.Error("bad token verified")
	}
	if !st.Verify("tok1") {
		t.Error("good token rejected")
	}
	if st.Verify("tok1") {
		t.Error("token reuse allowed")
	}
	a, _ := st.Lookup("bob")
	if !a.Verified {
		t.Error("account not marked verified")
	}
}

func TestDumpMatchesPolicy(t *testing.T) {
	st := NewStore(StoreStrongHash)
	st.Create("carol", "carol@x.test", "Diamond7", "salty", time.Now())
	dump := st.Dump()
	if len(dump) != 1 {
		t.Fatalf("dump has %d entries", len(dump))
	}
	e := dump[0]
	if e.Policy != StoreStrongHash || e.Salt != "salty" {
		t.Fatalf("dump entry %+v lacks policy/salt", e)
	}
	if e.Stored == "Diamond7" {
		t.Fatal("dump leaked plaintext under a hashing policy")
	}
	if e.Stored != EncodePassword(StoreStrongHash, "Diamond7", "salty") {
		t.Fatal("dump credential does not verify")
	}
}

func universeForSite(t *testing.T, mutate func(*Site)) (*Universe, *Site) {
	t.Helper()
	cfg := smallConfig()
	u := Generate(cfg)
	var site *Site
	for _, s := range u.Sites() {
		if s.Eligible() && !s.MultiStage && s.Captcha == captcha.None && !s.FlakyBackend &&
			!s.OddFieldNames && !s.ObscureRegLink && !s.Passwords.RequireSpecial &&
			s.MaxEmailLen == 0 {
			site = s
			break
		}
	}
	if site == nil {
		t.Fatal("no clean eligible site in universe")
	}
	if mutate != nil {
		mutate(site)
	}
	return u, site
}

func get(t *testing.T, u *Universe, host, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "http://"+host+path, nil)
	rec := httptest.NewRecorder()
	u.ServeHTTP(rec, req)
	return rec
}

func post(t *testing.T, u *Universe, host, path string, vals url.Values) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "http://"+host+path, strings.NewReader(vals.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rec := httptest.NewRecorder()
	u.ServeHTTP(rec, req)
	return rec
}

// fillPerfect builds a valid submission from ground truth.
func fillPerfect(u *Universe, site *Site, email, password string) url.Values {
	spec := u.FormSpec(site)
	vals := url.Values{}
	for _, f := range spec.Fields {
		switch f.Kind {
		case FieldCSRF:
			vals.Set(f.Name, csrfToken(site.Domain))
		case FieldEmail:
			vals.Set(f.Name, email)
		case FieldPassword, FieldConfirm:
			vals.Set(f.Name, password)
		case FieldUsername:
			vals.Set(f.Name, "testuser99")
		case FieldTOS:
			vals.Set(f.Name, "on")
		case FieldCaptcha:
			// handled by caller when needed
		default:
			if f.Required {
				vals.Set(f.Name, "Value")
			}
		}
	}
	return vals
}

func TestRegistrationHappyPath(t *testing.T) {
	u, site := universeForSite(t, nil)
	var sent []string
	u.Mailer = MailerFunc(func(from, to, subject, body string) error {
		sent = append(sent, subject)
		return nil
	})
	home := get(t, u, site.Domain, "/")
	if home.Code != http.StatusOK || !strings.Contains(home.Body.String(), site.RegPath) {
		t.Fatalf("home page missing registration link: code=%d", home.Code)
	}
	vals := fillPerfect(u, site, "newuser@mail.test", "Sunshine3aQ")
	resp := post(t, u, site.Domain, site.RegPath, vals)
	if resp.Code != http.StatusOK {
		t.Fatalf("registration returned %d", resp.Code)
	}
	st := u.Store(site.Domain)
	if st.Len() != 1 {
		t.Fatalf("store has %d accounts, want 1", st.Len())
	}
	if site.EmailVerify && len(sent) == 0 {
		t.Error("verification email not sent")
	}
	if !st.CheckPassword("testuser99", "Sunshine3aQ") && !st.CheckPassword("newuser", "Sunshine3aQ") {
		t.Error("stored credential does not verify")
	}
}

func TestRegistrationRejectsBadCSRF(t *testing.T) {
	u, site := universeForSite(t, nil)
	vals := fillPerfect(u, site, "x@mail.test", "Sunshine3aQ")
	spec := u.FormSpec(site)
	f, _ := spec.Field(FieldCSRF)
	vals.Set(f.Name, "forged")
	post(t, u, site.Domain, site.RegPath, vals)
	if u.Store(site.Domain).Len() != 0 {
		t.Fatal("account created despite bad CSRF token")
	}
}

func TestRegistrationRejectsMissingRequired(t *testing.T) {
	u, site := universeForSite(t, nil)
	vals := fillPerfect(u, site, "x@mail.test", "Sunshine3aQ")
	spec := u.FormSpec(site)
	f, _ := spec.Field(FieldEmail)
	vals.Del(f.Name)
	resp := post(t, u, site.Domain, site.RegPath, vals)
	if u.Store(site.Domain).Len() != 0 {
		t.Fatal("account created despite missing email")
	}
	if !strings.Contains(strings.ToLower(resp.Body.String()), "error") {
		t.Error("failure page lacks error wording")
	}
}

func TestRegistrationRejectsEmailTooLong(t *testing.T) {
	u, site := universeForSite(t, func(s *Site) { s.MaxEmailLen = 12 })
	vals := fillPerfect(u, site, "averylongaddress@mail.test", "Sunshine3aQ")
	post(t, u, site.Domain, site.RegPath, vals)
	if u.Store(site.Domain).Len() != 0 {
		t.Fatal("account created despite email-length cap (paper §6.2.3)")
	}
}

func TestRegistrationPasswordPolicy(t *testing.T) {
	u, site := universeForSite(t, func(s *Site) { s.Passwords = PasswordPolicy{MinLen: 10} })
	vals := fillPerfect(u, site, "x@mail.test", "short1")
	post(t, u, site.Domain, site.RegPath, vals)
	if u.Store(site.Domain).Len() != 0 {
		t.Fatal("short password accepted against policy")
	}
}

func TestFlakyBackendShowsSuccessStoresNothing(t *testing.T) {
	u, site := universeForSite(t, func(s *Site) { s.FlakyBackend = true; s.VagueResponse = false })
	vals := fillPerfect(u, site, "x@mail.test", "Sunshine3aQ")
	resp := post(t, u, site.Domain, site.RegPath, vals)
	body := strings.ToLower(resp.Body.String())
	if !strings.Contains(body, "thank") && !strings.Contains(body, "success") {
		t.Error("flaky backend should still render success")
	}
	if u.Store(site.Domain).Len() != 0 {
		t.Fatal("flaky backend stored an account")
	}
}

func TestVerificationFlow(t *testing.T) {
	u, site := universeForSite(t, func(s *Site) { s.EmailVerify = true; s.VerifyToLogin = true })
	var link string
	u.Mailer = MailerFunc(func(from, to, subject, body string) error {
		if i := strings.Index(body, "http://"); i >= 0 {
			link = strings.Fields(body[i:])[0]
		}
		return nil
	})
	vals := fillPerfect(u, site, "v@mail.test", "Sunshine3aQ")
	post(t, u, site.Domain, site.RegPath, vals)
	if link == "" {
		t.Fatal("no verification link emailed")
	}
	// Login should fail pre-verification.
	lv := url.Values{"login": {"v@mail.test"}, "password": {"Sunshine3aQ"}}
	if rec := post(t, u, site.Domain, "/login", lv); rec.Code == http.StatusOK {
		t.Fatal("login allowed before verification on a verify-to-login site")
	}
	pu, err := url.Parse(link)
	if err != nil {
		t.Fatal(err)
	}
	if rec := get(t, u, site.Domain, pu.Path+"?"+pu.RawQuery); rec.Code != http.StatusOK {
		t.Fatalf("verification link returned %d", rec.Code)
	}
	if rec := post(t, u, site.Domain, "/login", lv); rec.Code != http.StatusOK {
		t.Fatalf("login rejected after verification: %d", rec.Code)
	}
}

func TestMultiStageFlow(t *testing.T) {
	cfg := smallConfig()
	u := Generate(cfg)
	var site *Site
	for _, s := range u.Sites() {
		if s.Eligible() && s.MultiStage && s.Captcha == captcha.None && !s.OddFieldNames &&
			!s.FlakyBackend && !s.Passwords.RequireSpecial && s.MaxEmailLen == 0 {
			site = s
			break
		}
	}
	if site == nil {
		t.Skip("no multi-stage site in small universe")
	}
	vals := fillPerfect(u, site, "ms@mail.test", "Sunshine3aQ")
	resp := post(t, u, site.Domain, site.RegPath, vals)
	if u.Store(site.Domain).Len() != 0 {
		t.Fatal("multi-stage site created account after step 1 only")
	}
	body := resp.Body.String()
	if !strings.Contains(body, "Step 2 of 2") {
		t.Fatalf("step-1 response is not step 2: %.200s", body)
	}
	contIdx := strings.Index(body, `name="continuation" value="`)
	if contIdx < 0 {
		t.Fatal("no continuation token in step 2")
	}
	rest := body[contIdx+len(`name="continuation" value="`):]
	cont := rest[:strings.IndexByte(rest, '"')]
	step2 := profileFormSpec(site)
	v2 := url.Values{"continuation": {cont}}
	for _, f := range step2.Fields {
		switch f.Kind {
		case FieldCSRF:
			v2.Set(f.Name, csrfToken(site.Domain))
		case FieldTOS:
			v2.Set(f.Name, "on")
		default:
			v2.Set(f.Name, "Value")
		}
	}
	post(t, u, site.Domain, site.RegPath+"/complete", v2)
	if u.Store(site.Domain).Len() != 1 {
		t.Fatal("multi-stage completion did not create the account")
	}
}

func TestCaptchaVerification(t *testing.T) {
	_, site := universeForSite(t, nil)
	// Use a fresh universe so the form spec is built after the captcha is
	// enabled (specs are cached per universe).
	u2 := Generate(smallConfig())
	site2, _ := u2.Site(site.Domain)
	site2.Captcha = captcha.Image
	spec := u2.FormSpec(site2)
	if _, ok := spec.Field(FieldCaptcha); !ok {
		t.Skip("spec cached without captcha field")
	}
	issuer := u2.Issuer(site2)
	rng := rand.New(rand.NewSource(1))
	ch := issuer.Issue(captcha.Image, rng)
	vals := fillPerfect(u2, site2, "c@mail.test", "Sunshine3aQ")
	f, _ := spec.Field(FieldCaptcha)
	vals.Set("captcha_id", ch.ID)
	vals.Set(f.Name, "wrong answer")
	post(t, u2, site2.Domain, site2.RegPath, vals)
	if u2.Store(site2.Domain).Len() != 0 {
		t.Fatal("wrong captcha answer accepted")
	}
	vals.Set(f.Name, issuer.Answer(ch))
	post(t, u2, site2.Domain, site2.RegPath, vals)
	if u2.Store(site2.Domain).Len() != 1 {
		t.Fatal("correct captcha answer rejected")
	}
}

func TestLoadFailureSiteReturns5xx(t *testing.T) {
	u := Generate(smallConfig())
	for _, s := range u.Sites() {
		if s.LoadFailure {
			if rec := get(t, u, s.Domain, "/"); rec.Code < 500 {
				t.Fatalf("load-failure site returned %d", rec.Code)
			}
			return
		}
	}
	t.Skip("no load-failure site in small universe")
}

func TestUnknownHost(t *testing.T) {
	u := Generate(smallConfig())
	if rec := get(t, u, "nosuchsite.test", "/"); rec.Code != http.StatusBadGateway {
		t.Fatalf("unknown host returned %d", rec.Code)
	}
}

func TestNonEnglishSiteHasNoEnglishSignupText(t *testing.T) {
	u := Generate(smallConfig())
	for _, s := range u.Sites() {
		if s.Language != LangEnglish && !s.LoadFailure && s.HasRegistration && !s.ExternalAuthOnly && !s.ObscureRegLink {
			body := get(t, u, s.Domain, "/").Body.String()
			lower := strings.ToLower(body)
			for _, kw := range []string{"sign up", "register<", "create account", "join now"} {
				if strings.Contains(lower, kw) {
					t.Fatalf("non-English site %s leaks English signup text %q", s.Domain, kw)
				}
			}
			return
		}
	}
	t.Skip("no suitable non-English site")
}

// Property: CheckPassword accepts exactly the registered password, for all
// policies and arbitrary password strings.
func TestQuickCheckPasswordExact(t *testing.T) {
	policies := []StoragePolicy{StorePlaintext, StoreReversible, StoreWeakHash, StoreStrongHash}
	f := func(pw, other string, which uint8) bool {
		st := NewStore(policies[int(which)%len(policies)])
		if _, err := st.Create("u", "u@x.test", pw, "salt", time.Time{}); err != nil {
			return true
		}
		if !st.CheckPassword("u", pw) {
			return false
		}
		if other != pw && st.CheckPassword("u", other) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
