package webgen

import (
	"fmt"
	"strings"

	"tripwire/internal/captcha"
	"tripwire/internal/xrand"
)

// lexicon holds the per-language strings appearing on rendered pages. The
// crawler's heuristics are English-only (paper §4.3.1), so non-English
// sites render all navigation and labels in their own language.
type lexicon struct {
	signup   []string // registration link texts
	login    string
	home     string
	about    string
	contact  string
	blurbs   []string // filler sentences
	register string   // registration page heading
	submit   string   // submit button text
	success  string   // registration success message
	vague    string   // non-committal response message
	errorMsg string   // validation failure message
	welcome  string
}

var lexicons = map[Language]*lexicon{
	LangEnglish: {
		signup: linkTexts,
		login:  "Log in", home: "Home", about: "About", contact: "Contact",
		blurbs: []string{
			"Welcome to the best destination for news, reviews and community.",
			"Join thousands of members who trust us every day.",
			"Browse our catalog and find exactly what you are looking for.",
			"Fresh content updated daily by our editorial team.",
		},
		register: "Create your account", submit: "Create account",
		success:  "Thank you for registering! Your account has been created successfully.",
		vague:    "Your request has been received and is being processed.",
		errorMsg: "Error: please correct the highlighted fields and try again.",
		welcome:  "Welcome back",
	},
	LangChinese: {
		signup: []string{"注册", "创建账户", "立即加入"},
		login:  "登录", home: "首页", about: "关于我们", contact: "联系我们",
		blurbs:   []string{"欢迎访问我们的网站。", "每天更新最新内容。", "加入我们的社区。"},
		register: "创建您的账户", submit: "注册",
		success: "注册成功！", vague: "您的请求已收到。",
		errorMsg: "错误：请更正以下字段。", welcome: "欢迎回来",
	},
	LangRussian: {
		signup: []string{"Регистрация", "Создать аккаунт", "Присоединиться"},
		login:  "Войти", home: "Главная", about: "О нас", contact: "Контакты",
		blurbs:   []string{"Добро пожаловать на наш сайт.", "Свежие новости каждый день.", "Присоединяйтесь к сообществу."},
		register: "Создайте аккаунт", submit: "Зарегистрироваться",
		success: "Регистрация прошла успешно!", vague: "Ваш запрос получен.",
		errorMsg: "Ошибка: исправьте поля ниже.", welcome: "С возвращением",
	},
	LangSpanish: {
		signup: []string{"Regístrate", "Crear cuenta", "Únete ahora"},
		login:  "Iniciar sesión", home: "Inicio", about: "Acerca de", contact: "Contacto",
		blurbs:   []string{"Bienvenido a nuestro sitio.", "Contenido nuevo cada día.", "Únete a nuestra comunidad."},
		register: "Crea tu cuenta", submit: "Registrarse",
		success: "¡Registro completado!", vague: "Su solicitud ha sido recibida.",
		errorMsg: "Error: corrija los campos.", welcome: "Bienvenido",
	},
	LangGerman: {
		signup: []string{"Registrieren", "Konto erstellen", "Jetzt beitreten"},
		login:  "Anmelden", home: "Startseite", about: "Über uns", contact: "Kontakt",
		blurbs:   []string{"Willkommen auf unserer Seite.", "Täglich neue Inhalte.", "Werden Sie Mitglied."},
		register: "Konto erstellen", submit: "Registrieren",
		success: "Registrierung erfolgreich!", vague: "Ihre Anfrage ist eingegangen.",
		errorMsg: "Fehler: bitte Felder korrigieren.", welcome: "Willkommen zurück",
	},
	LangFrench: {
		signup: []string{"S'inscrire", "Créer un compte", "Rejoignez-nous"},
		login:  "Connexion", home: "Accueil", about: "À propos", contact: "Contact",
		blurbs:   []string{"Bienvenue sur notre site.", "Du contenu frais chaque jour.", "Rejoignez notre communauté."},
		register: "Créez votre compte", submit: "S'inscrire",
		success: "Inscription réussie !", vague: "Votre demande a été reçue.",
		errorMsg: "Erreur : corrigez les champs.", welcome: "Bon retour",
	},
}

func (s *Site) lex() *lexicon {
	if l, ok := lexicons[s.Language]; ok {
		return l
	}
	return lexicons[LangEnglish]
}

// pageShell wraps body content in the site's standard chrome.
func pageShell(s *Site, title, body string) string {
	l := s.lex()
	var b strings.Builder
	// One exact-ish allocation instead of a doubling cascade: the shell adds
	// a few hundred bytes of chrome around body.
	b.Grow(len(body) + 512)
	b.WriteString("<!DOCTYPE html>\n<html><head><title>")
	b.WriteString(escape(title))
	b.WriteString(" - ")
	b.WriteString(escape(s.Name))
	b.WriteString("</title></head>\n<body>\n<div id=\"header\"><h1>")
	b.WriteString(escape(s.Name))
	b.WriteString("</h1>\n<ul id=\"nav\">\n")
	navItem(&b, "/", l.home)
	navItem(&b, "/about", l.about)
	navItem(&b, "/contact", l.contact)
	navItem(&b, "/login", l.login)
	b.WriteString("</ul></div>\n<div id=\"content\">\n")
	b.WriteString(body)
	b.WriteString("\n</div>\n<div id=\"footer\"><p>&copy; ")
	b.WriteString(escape(s.Name))
	b.WriteString("</p></div>\n</body></html>\n")
	return b.String()
}

// navItem writes one navigation entry without a fmt round trip.
func navItem(b *strings.Builder, href, label string) {
	b.WriteString("<li><a href=\"")
	b.WriteString(href)
	b.WriteString("\">")
	b.WriteString(escape(label))
	b.WriteString("</a></li>\n")
}

// renderHome renders the site's home page, including (for most sites) the
// registration link the crawler must discover.
func renderHome(s *Site) string {
	l := s.lex()
	rng := s.rng()
	var b strings.Builder
	for i := 0; i < 2+rng.Intn(3); i++ {
		fmt.Fprintf(&b, "<p>%s</p>\n", escape(l.blurbs[rng.Intn(len(l.blurbs))]))
	}
	// Decoy search form: single text input, no password — heuristics must
	// not mistake it for registration.
	b.WriteString("<form action=\"/search\" method=\"get\"><input type=\"text\" name=\"q\"><input type=\"submit\" value=\"Search\"></form>\n")
	if s.HasRegistration {
		switch {
		case s.ExternalAuthOnly:
			// SSO-only: a button, no crawlable registration form anywhere.
			fmt.Fprintf(&b, "<p><a href=\"/sso/start\" class=\"btn\">%s</a></p>\n", escape("Continue with BigAuth"))
		case s.ObscureRegLink:
			// The link exists but its text is an image: nothing for the
			// text heuristics to match (paper §6.2.2).
			fmt.Fprintf(&b, "<p><a href=\"%s\"><img src=\"/img/join-button.png\" alt=\"\"></a></p>\n", s.RegPath)
		default:
			linkText := s.LinkText
			if s.Language != LangEnglish {
				linkText = l.signup[rng.Intn(len(l.signup))]
			}
			fmt.Fprintf(&b, "<p><a href=\"%s\" id=\"signup-link\">%s</a></p>\n", s.RegPath, escape(linkText))
		}
	}
	// Sidebar decoy: newsletter form (email but no password).
	b.WriteString("<div id=\"sidebar\"><form action=\"/newsletter\" method=\"post\"><input type=\"text\" name=\"nl_email\" placeholder=\"you@example.com\"><input type=\"submit\" value=\"OK\"></form></div>\n")
	return pageShell(s, l.home, b.String())
}

// Dynamic-value slots. Templates are rendered once per (site, path) with
// these sentinels in place of values that conceptually belong to the serve,
// not the page: the CSRF token and the CAPTCHA challenge. spliceDynamic
// fills them in per request. The NUL framing cannot collide with rendered
// content: no lexicon, field spec, or escape output contains a NUL byte.
const (
	slotCSRF          = "\x00csrf\x00"
	slotCaptchaID     = "\x00captcha-id\x00"
	slotCaptchaPrompt = "\x00captcha-prompt\x00"
)

// spliceDynamic replaces dynamic-value slots in a rendered template with
// this serve's values. Both the CSRF token (a stateless HMAC of the
// domain) and the challenge (derived from a fresh per-render RNG seeded
// only by the site) are pure functions of the site, so a spliced cached
// template is byte-identical to an uncached render — which is what keeps
// the parallel crawl engine's output independent of worker schedule.
func spliceDynamic(tpl string, s *Site, issuer *captcha.Issuer) string {
	if !strings.Contains(tpl, "\x00") {
		return tpl
	}
	out := strings.ReplaceAll(tpl, slotCSRF, csrfToken(s.Domain))
	if issuer != nil && strings.Contains(out, slotCaptchaID) {
		rng := xrand.New(s.seed ^ 0x9a6e5)
		ch := issuer.Issue(s.Captcha, rng)
		out = strings.ReplaceAll(out, slotCaptchaID, escape(ch.ID))
		out = strings.ReplaceAll(out, slotCaptchaPrompt, escape(ch.Prompt))
	}
	return out
}

// renderRegistration renders the site's registration form page. For
// multi-stage sites this is page one (credentials only); for SSO-only sites
// it renders buttons with no form.
func renderRegistration(s *Site, spec *FormSpec, issuer *captcha.Issuer) string {
	return spliceDynamic(renderRegistrationTemplate(s, spec), s, issuer)
}

// renderRegistrationTemplate renders the registration page with dynamic
// slots left as sentinels. The result depends only on the site and its
// form spec, so the Universe caches it per site.
func renderRegistrationTemplate(s *Site, spec *FormSpec) string {
	l := s.lex()
	if s.ExternalAuthOnly {
		body := fmt.Sprintf("<h2>%s</h2>\n<p><a href=\"/sso/start\" class=\"btn\">Continue with BigAuth</a></p>\n<p><a href=\"/sso/other\" class=\"btn\">Continue with FaceSpace</a></p>\n", escape(l.register))
		return pageShell(s, l.register, body)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "<h2>%s</h2>\n", escape(l.register))
	if s.JSForm {
		// The form is assembled client-side; a static DOM walk sees only a
		// mount point and a script. This is the paper's dominant eligible-
		// site failure ("form misidentification", Figure 3).
		b.WriteString("<div id=\"reg-root\"></div>\n")
		fmt.Fprintf(&b, "<script>window.__APP__.mountRegistrationForm('#reg-root', {action: %q});</script>\n", s.RegPath)
		return pageShell(s, l.register, b.String())
	}
	action := s.RegPath
	fmt.Fprintf(&b, "<form id=\"regform\" action=\"%s\" method=\"post\">\n", action)
	renderFields(&b, s, spec, true)
	fmt.Fprintf(&b, "<input type=\"submit\" value=\"%s\">\n</form>\n", escape(l.submit))
	if s.MultiStage {
		b.WriteString("<p class=\"steps\">Step 1 of 2</p>\n")
	}
	return pageShell(s, l.register, b.String())
}

// renderStep2 renders the second page of a multi-stage registration. The
// continuation token is per-request state, so this page is never cached.
func renderStep2(s *Site, spec *FormSpec, continuation string) string {
	l := s.lex()
	var b strings.Builder
	fmt.Fprintf(&b, "<h2>%s</h2>\n<p class=\"steps\">Step 2 of 2</p>\n", escape(l.register))
	fmt.Fprintf(&b, "<form id=\"regform2\" action=\"%s/complete\" method=\"post\">\n", s.RegPath)
	fmt.Fprintf(&b, "<input type=\"hidden\" name=\"continuation\" value=\"%s\">\n", escape(continuation))
	renderFields(&b, s, spec, false)
	fmt.Fprintf(&b, "<input type=\"submit\" value=\"%s\">\n</form>\n", escape(l.submit))
	return spliceDynamic(pageShell(s, l.register, b.String()), s, nil)
}

// formLayout is how a site arranges label/control pairs. Real sites vary;
// the crawler's label-association heuristics must survive all of them.
type formLayout int

const (
	layoutParagraph formLayout = iota // <p><label>..</label><input></p>
	layoutTable                       // <tr><td>label</td><td><input></td></tr>
	layoutDiv                         // <div class="field"><label>..</label><input></div>
)

func (s *Site) layout() formLayout {
	return formLayout(xrand.New(s.seed ^ 0x1a7).Intn(3))
}

// fieldRow renders one labelled control in the site's layout.
func fieldRow(b *strings.Builder, layout formLayout, label, control string) {
	switch layout {
	case layoutTable:
		fmt.Fprintf(b, "<tr><td>%s</td><td>%s</td></tr>\n", label, control)
	case layoutDiv:
		fmt.Fprintf(b, "<div class=\"field\">%s%s</div>\n", label, control)
	default:
		fmt.Fprintf(b, "<p>%s%s</p>\n", label, control)
	}
}

// renderFields renders the form controls with dynamic slots as sentinels;
// withCaptcha gates the CAPTCHA block (step-two forms never carry one).
func renderFields(b *strings.Builder, s *Site, spec *FormSpec, withCaptcha bool) {
	layout := s.layout()
	if layout == layoutTable {
		b.WriteString("<table class=\"formgrid\">\n")
		defer b.WriteString("</table>\n")
	}
	for _, f := range spec.Fields {
		switch {
		case f.Kind == FieldCSRF:
			fmt.Fprintf(b, "<input type=\"hidden\" name=\"%s\" value=\"%s\">\n", f.Name, slotCSRF)
		case f.Kind == FieldCaptcha && withCaptcha:
			fmt.Fprintf(b, "<input type=\"hidden\" name=\"captcha_id\" value=\"%s\">\n", slotCaptchaID)
			switch s.Captcha {
			case captcha.Image:
				fieldRow(b, layout,
					fmt.Sprintf("<label>%s</label>", escape(f.Label)),
					fmt.Sprintf("<img src=\"/captcha/%s.png\" alt=\"captcha\"><input type=\"text\" name=\"%s\">", slotCaptchaID, f.Name))
			case captcha.Knowledge:
				fieldRow(b, layout,
					fmt.Sprintf("<label>%s</label>", slotCaptchaPrompt),
					fmt.Sprintf("<input type=\"text\" name=\"%s\">", f.Name))
			case captcha.Interactive:
				fmt.Fprintf(b, "<div class=\"g-recaptcha\" data-sitekey=\"%s\"></div><input type=\"hidden\" name=\"captcha_token\" value=\"\">\n", slotCSRF)
			}
		case f.Type == "checkbox":
			req := ""
			if f.Required {
				req = " required"
			}
			fieldRow(b, layout,
				fmt.Sprintf("<input type=\"checkbox\" name=\"%s\" value=\"on\"%s> ", f.Name, req),
				fmt.Sprintf("<label>%s</label>", escape(f.Label)))
		case f.Type == "select":
			var opts strings.Builder
			fmt.Fprintf(&opts, "<select name=\"%s\">", f.Name)
			for _, st := range []string{"", "CA", "NY", "TX", "WA", "FL"} {
				fmt.Fprintf(&opts, "<option value=\"%s\">%s</option>", st, st)
			}
			opts.WriteString("</select>")
			fieldRow(b, layout, fmt.Sprintf("<label>%s</label>", escape(f.Label)), opts.String())
		default:
			req := ""
			star := ""
			if f.Required {
				req = " required"
				star = " *"
			}
			fieldRow(b, layout,
				fmt.Sprintf("<label for=\"%s\">%s%s</label>", f.Name, escape(f.Label), star),
				fmt.Sprintf("<input type=\"%s\" name=\"%s\" id=\"%s\"%s>", f.Type, f.Name, f.Name, req))
		}
	}
}

// renderOutcome renders the post-submission page. ok selects success vs
// error; for sites with VagueResponse the success page wording avoids every
// keyword the crawler's success heuristics look for.
func renderOutcome(s *Site, ok bool, detail string) string {
	l := s.lex()
	var b strings.Builder
	if ok {
		msg := l.success
		if s.VagueResponse {
			msg = l.vague
		}
		fmt.Fprintf(&b, "<h2>%s</h2>\n", escape(msg))
		if s.EmailVerify && !s.VagueResponse {
			b.WriteString("<p>Please check your email to verify your account.</p>\n")
		}
	} else {
		fmt.Fprintf(&b, "<h2>%s</h2>\n<p class=\"error\">%s</p>\n", escape(l.errorMsg), escape(detail))
	}
	return pageShell(s, l.home, b.String())
}

// renderContact renders the site's contact page, the first address source
// the paper's disclosure process consulted ("looking for contact
// information on the site", §6.3.1).
func renderContact(s *Site) string {
	l := s.lex()
	var b strings.Builder
	fmt.Fprintf(&b, "<h2>%s</h2>\n", escape(l.contact))
	if s.ContactEmail != "" {
		fmt.Fprintf(&b, "<p>Questions? Write to <a href=\"mailto:%s\">%s</a>.</p>\n",
			escape(s.ContactEmail), escape(s.ContactEmail))
	} else {
		b.WriteString("<p>Use our social channels to reach the team.</p>\n")
	}
	return pageShell(s, l.contact, b.String())
}

// renderLogin renders the login page; POST /login responds with a success
// or failure body used by registration-validation probes.
func renderLogin(s *Site) string {
	l := s.lex()
	var b strings.Builder
	fmt.Fprintf(&b, "<h2>%s</h2>\n", escape(l.login))
	b.WriteString("<form id=\"loginform\" action=\"/login\" method=\"post\">\n")
	b.WriteString("<p><label>Username or email</label><input type=\"text\" name=\"login\"></p>\n")
	b.WriteString("<p><label>Password</label><input type=\"password\" name=\"password\"></p>\n")
	fmt.Fprintf(&b, "<input type=\"submit\" value=\"%s\">\n</form>\n", escape(l.login))
	return pageShell(s, l.login, b.String())
}

// escapeReplacer is built once: escape runs on every rendered string, and
// a strings.Replacer's lookup structure is expensive to rebuild per call.
var escapeReplacer = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")

func escape(s string) string { return escapeReplacer.Replace(s) }
