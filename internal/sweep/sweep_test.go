package sweep_test

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"tripwire"
	"tripwire/internal/sweep"
)

// tinyConfig shrinks the small-scale study to the quick-pilot size the sim
// tests use, keeping a multi-seed sweep affordable inside a unit test.
func tinyConfig(seed int64) tripwire.Config {
	cfg := tripwire.SmallConfig()
	cfg.Seed = seed * 101
	cfg.Web.NumSites = 400
	cfg.NumUnused = 300
	return cfg
}

// TestSweepParallelByteIdentical pins the sweep's core contract: the
// aggregate summary (and every per-seed result) from a parallel sweep is
// byte-identical to the serial one — parallelism reorders only the
// streamed progress lines, never the outcome.
func TestSweepParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("eight quick pilots in -short mode")
	}
	run := func(parallel int) (*sweep.Outcome, string) {
		var progress bytes.Buffer
		out := sweep.Run(sweep.Options{
			N:         4,
			Parallel:  parallel,
			ConfigFor: tinyConfig,
			Progress:  &progress,
		})
		return out, progress.String()
	}
	serial, serialProg := run(1)
	par, parProg := run(4)

	if !reflect.DeepEqual(serial.Results, par.Results) {
		t.Fatalf("per-seed results diverge between -parallel 1 and 4:\nserial: %+v\nparallel: %+v",
			serial.Results, par.Results)
	}
	a, b := serial.Render("small"), par.Render("small")
	if a != b {
		t.Fatalf("rendered summaries differ:\nserial:\n%s\nparallel:\n%s", a, b)
	}
	for _, prog := range []string{serialProg, parProg} {
		if got := strings.Count(prog, "\n"); got != 4 {
			t.Fatalf("progress stream has %d lines, want one per seed (4):\n%s", got, prog)
		}
	}
	if err := serial.Failed(); err != nil {
		t.Fatalf("clean sweep reported failure: %v", err)
	}
	if len(serial.Results) != 4 || serial.Results[0].Seed != 101 {
		t.Fatalf("unexpected results shape: %+v", serial.Results)
	}
}

// TestSweepFailedSurfacesErrors checks the exit-status plumbing: a seed
// whose study construction fails must surface through Failed.
func TestSweepFailedSurfacesErrors(t *testing.T) {
	out := sweep.Run(sweep.Options{
		N: 1,
		ConfigFor: func(seed int64) tripwire.Config {
			cfg := tinyConfig(seed)
			cfg.Web.NumSites = -1 // invalid: study carries a config error
			return cfg
		},
	})
	if err := out.Failed(); err == nil {
		t.Fatal("Failed() = nil for a sweep whose only seed errored")
	}
	if out.Results[0].Err == nil {
		t.Fatal("seed result did not record the study error")
	}
}

// BenchmarkSweep measures whole-study sweep throughput (seeds/s) serially
// and with the worker pool engaged.
func BenchmarkSweep(b *testing.B) {
	const seeds = 3
	for _, parallel := range []int{1, 4} {
		b.Run(fmt.Sprintf("parallel=%d", parallel), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out := sweep.Run(sweep.Options{N: seeds, Parallel: parallel, ConfigFor: tinyConfig})
				if err := out.Failed(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N*seeds)/b.Elapsed().Seconds(), "seeds/s")
		})
	}
}
