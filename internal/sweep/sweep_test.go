package sweep_test

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"tripwire"
	"tripwire/internal/sweep"
)

// tinyConfig shrinks the small-scale study to the quick-pilot size the sim
// tests use, keeping a multi-seed sweep affordable inside a unit test.
func tinyConfig(seed int64) tripwire.Config {
	cfg := tripwire.SmallConfig()
	cfg.Seed = seed * 101
	cfg.Web.NumSites = 400
	cfg.NumUnused = 300
	return cfg
}

// zeroWall strips the one wall-clock field from a result set. Wall is
// measurement metadata excluded from the byte-identity contract; every
// other field must match exactly.
func zeroWall(rs []sweep.SeedResult) []sweep.SeedResult {
	out := make([]sweep.SeedResult, len(rs))
	copy(out, rs)
	for i := range out {
		out[i].Wall = 0
	}
	return out
}

// TestSweepParallelByteIdentical pins the sweep's core contract: the
// aggregate summary (and every per-seed result) from a parallel sweep is
// byte-identical to the serial one — parallelism reorders only the
// streamed progress lines, never the outcome. Wall clock is the single
// exception: it is zeroed before comparison.
func TestSweepParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("eight quick pilots in -short mode")
	}
	run := func(parallel int) (*sweep.Outcome, string) {
		var progress bytes.Buffer
		out := sweep.Run(sweep.Options{
			N:         4,
			Parallel:  parallel,
			ConfigFor: tinyConfig,
			Progress:  &progress,
		})
		return out, progress.String()
	}
	serial, serialProg := run(1)
	par, parProg := run(4)

	if !reflect.DeepEqual(zeroWall(serial.Results), zeroWall(par.Results)) {
		t.Fatalf("per-seed results diverge between -parallel 1 and 4:\nserial: %+v\nparallel: %+v",
			serial.Results, par.Results)
	}
	a := (&sweep.Outcome{Results: zeroWall(serial.Results)}).Render("small")
	b := (&sweep.Outcome{Results: zeroWall(par.Results)}).Render("small")
	if a != b {
		t.Fatalf("rendered summaries differ:\nserial:\n%s\nparallel:\n%s", a, b)
	}
	for _, prog := range []string{serialProg, parProg} {
		if got := strings.Count(prog, "\n"); got != 4 {
			t.Fatalf("progress stream has %d lines, want one per seed (4):\n%s", got, prog)
		}
	}
	for _, r := range serial.Results {
		if r.Wall <= 0 {
			t.Fatalf("seed %d recorded no wall time: %+v", r.Seed, r)
		}
	}
	if !strings.Contains(a, "seed wall time s:") {
		t.Fatalf("Render is missing the wall-time row:\n%s", a)
	}
	if err := serial.Failed(); err != nil {
		t.Fatalf("clean sweep reported failure: %v", err)
	}
	if len(serial.Results) != 4 || serial.Results[0].Seed != 101 {
		t.Fatalf("unexpected results shape: %+v", serial.Results)
	}
}

// TestSweepFailedSurfacesErrors checks the exit-status plumbing: a seed
// whose study construction fails must surface through Failed.
func TestSweepFailedSurfacesErrors(t *testing.T) {
	out := sweep.Run(sweep.Options{
		N: 1,
		ConfigFor: func(seed int64) tripwire.Config {
			cfg := tinyConfig(seed)
			cfg.Web.NumSites = -1 // invalid: study carries a config error
			return cfg
		},
	})
	if err := out.Failed(); err == nil {
		t.Fatal("Failed() = nil for a sweep whose only seed errored")
	}
	if out.Results[0].Err == nil {
		t.Fatal("seed result did not record the study error")
	}
}

// BenchSweepConfig is the latency-bound study the sweep scaling
// benchmarks (here and in internal/distsweep) run per seed. Real studies
// are dominated by crawl network round trips, so the benchmark emulates a
// per-page RTT (Config.NetLatency) and pins each study's internal pools
// to one goroutine — the sweep-level pool is then the only concurrency,
// and the speedup it measures is latency overlap, which scales with
// worker count on any machine including single-core CI boxes.
//
// The previous BenchmarkSweep reported ~identical seeds/s at parallel=1
// and 4 for two compounding reasons this configuration removes: sweep.Run
// capped the pool at GOMAXPROCS (1 on the CI box — "parallel=4" silently
// ran serially), and the benchmark config had zero NetLatency, so even a
// real pool would have found no waiting to overlap on one core.
func BenchSweepConfig(seed int64) tripwire.Config {
	cfg := tinyConfig(seed)
	cfg.Web.NumSites = 150
	cfg.NumUnused = 120
	cfg.NetLatency = 8 * time.Millisecond
	cfg.CrawlWorkers = 1
	cfg.TimelineWorkers = 1
	return cfg
}

// BenchmarkSweep measures whole-study sweep throughput (seeds/s) at
// several pool sizes over latency-bound studies (see BenchSweepConfig).
func BenchmarkSweep(b *testing.B) {
	const seeds = 4
	for _, parallel := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("parallel=%d", parallel), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out := sweep.Run(sweep.Options{N: seeds, Parallel: parallel, ConfigFor: BenchSweepConfig})
				if err := out.Failed(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N*seeds)/b.Elapsed().Seconds(), "seeds/s")
		})
	}
}
