// Package sweep runs the pilot study across many seeds and aggregates the
// headline outcomes — the engine behind cmd/tripwire-sweep. Seeds run on a
// bounded worker pool; per-seed progress streams as each study finishes,
// but results aggregate in seed order, so the summary output is
// byte-identical at any parallelism.
package sweep

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"tripwire"
	"tripwire/internal/core"
	"tripwire/internal/report"
	"tripwire/internal/stats"
)

// Options configures one multi-seed sweep.
type Options struct {
	// N is how many seeds to run (1..N handed to ConfigFor).
	N int
	// Parallel bounds how many studies run concurrently. Values <= 1 run
	// serially; larger values are capped at GOMAXPROCS and N. Parallelism
	// affects wall clock and progress-line order only — never the results.
	Parallel int
	// ConfigFor builds the study configuration for one seed index.
	ConfigFor func(seed int64) tripwire.Config
	// Progress, when non-nil, receives one line per seed as it finishes.
	// Under parallelism the line order follows completion order.
	Progress io.Writer
}

// SeedResult is the headline outcome of one seed's study.
type SeedResult struct {
	Seed       int64 // cfg.Seed actually run
	Detections int   // detected compromises
	Plaintext  int   // detections classified as plaintext breaches
	ValidPct   float64
	HasValid   bool // false when no registration attempts happened
	EligPct    float64
	Alarms     int   // integrity alarms (must be zero)
	Err        error // Study.Err, when construction or the run failed
}

// Outcome is the full sweep result, in seed order.
type Outcome struct {
	Results []SeedResult
}

// Run executes the sweep described by o.
func Run(o Options) *Outcome {
	if o.N <= 0 {
		return &Outcome{}
	}
	workers := o.Parallel
	if workers < 1 {
		workers = 1
	}
	if max := runtime.GOMAXPROCS(0); workers > max {
		workers = max
	}
	if workers > o.N {
		workers = o.N
	}

	results := make([]SeedResult, o.N)
	var (
		next     atomic.Int64
		progress sync.Mutex
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= o.N {
					return
				}
				r := runSeed(o.ConfigFor(int64(i + 1)))
				results[i] = r
				if o.Progress != nil {
					progress.Lock()
					writeProgress(o.Progress, r)
					progress.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return &Outcome{Results: results}
}

// runSeed runs one study and distills its SeedResult.
func runSeed(cfg tripwire.Config) SeedResult {
	r := SeedResult{Seed: cfg.Seed}
	study := tripwire.New(tripwire.WithConfig(cfg)).Run()
	if err := study.Err(); err != nil {
		r.Err = err
		return r
	}
	p := study.Pilot()

	dets := study.Detections()
	r.Detections = len(dets)
	for _, d := range dets {
		if study.Classify(d) == core.BreachPlaintext {
			r.Plaintext++
		}
	}
	att, valid := 0, 0
	for _, row := range report.Table1(p) {
		att += row.AttHard + row.AttEasy
		valid += row.ValidHard + row.ValidEasy
	}
	if att > 0 {
		r.ValidPct = 100 * float64(valid) / float64(att)
		r.HasValid = true
	}
	r.EligPct = 100 * report.Fig3(p).SuccessOnElig
	r.Alarms = len(p.Monitor.Alarms())
	return r
}

// writeProgress emits the one-line per-seed progress record.
func writeProgress(w io.Writer, r SeedResult) {
	if r.Err != nil {
		fmt.Fprintf(w, "seed %-6d ERROR: %v\n", r.Seed, r.Err)
		return
	}
	fmt.Fprintf(w, "seed %-6d detections=%d hard=%d valid=%.0f%% eligOK=%.0f%%\n",
		r.Seed, r.Detections, r.Plaintext, r.ValidPct, r.EligPct)
}

// Render formats the aggregate summary block for the given scale label.
// It walks Results in seed order, so serial and parallel sweeps render
// byte-identical output.
func (oc *Outcome) Render(label string) string {
	var detections, plaintext, validRate, eligSuccess, alarms []float64
	for _, r := range oc.Results {
		if r.Err != nil {
			continue
		}
		detections = append(detections, float64(r.Detections))
		plaintext = append(plaintext, float64(r.Plaintext))
		if r.HasValid {
			validRate = append(validRate, r.ValidPct)
		}
		eligSuccess = append(eligSuccess, r.EligPct)
		alarms = append(alarms, float64(r.Alarms))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "\nMulti-seed robustness ( %s scale )\n", label)
	fmt.Fprintf(&b, "  detections:            %s\n", stats.Summarize(detections))
	fmt.Fprintf(&b, "  plaintext verdicts:    %s\n", stats.Summarize(plaintext))
	fmt.Fprintf(&b, "  account validity %%:    %s\n", stats.Summarize(validRate))
	fmt.Fprintf(&b, "  success on eligible %%: %s\n", stats.Summarize(eligSuccess))
	fmt.Fprintf(&b, "  integrity alarms:      %s (must be all zero)\n", stats.Summarize(alarms))
	return b.String()
}

// Failed reports why the sweep should exit non-zero: the first seed whose
// study carried an error, else the first seed that fired integrity alarms.
// A nil return means every seed ran clean.
func (oc *Outcome) Failed() error {
	for _, r := range oc.Results {
		if r.Err != nil {
			return fmt.Errorf("seed %d: %w", r.Seed, r.Err)
		}
	}
	for _, r := range oc.Results {
		if r.Alarms > 0 {
			return fmt.Errorf("integrity alarms fired (seed %d)", r.Seed)
		}
	}
	return nil
}
