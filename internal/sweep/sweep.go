// Package sweep runs the pilot study across many seeds and aggregates the
// headline outcomes — the engine behind cmd/tripwire-sweep. Seeds run on a
// bounded worker pool; per-seed progress streams as each study finishes,
// but results aggregate in seed order, so the summary output is
// byte-identical at any parallelism.
//
// The per-seed unit of work (RunSeed) and the per-seed progress format
// (ProgressLine, ProgressWriter) are exported because internal/distsweep
// reuses them verbatim: a distributed sweep is this package's task
// decomposition with the worker pool replaced by an HTTP lease protocol,
// and sharing the distillation and aggregation code is what makes the
// distributed output byte-identical to a serial Run.
package sweep

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tripwire"
	"tripwire/internal/core"
	"tripwire/internal/report"
	"tripwire/internal/stats"
)

// Options configures one multi-seed sweep.
type Options struct {
	// N is how many seeds to run (1..N handed to ConfigFor).
	N int
	// Parallel bounds how many studies run concurrently. Values <= 1 run
	// serially; larger values are capped at N. The pool is deliberately
	// NOT capped at GOMAXPROCS: studies with an emulated network latency
	// (Config.NetLatency) are sleep-bound, so concurrency past the core
	// count still overlaps useful waiting — on a single-core box a
	// GOMAXPROCS cap silently serialized every "parallel" sweep.
	// Parallelism affects wall clock and progress-line order only — never
	// the results.
	Parallel int
	// ConfigFor builds the study configuration for one seed index.
	ConfigFor func(seed int64) tripwire.Config
	// Progress, when non-nil, receives one line per seed as it finishes.
	// Under parallelism the line order follows completion order. Lines are
	// serialized by a single writer goroutine, so studies never contend on
	// a lock to report progress.
	Progress io.Writer
}

// SeedResult is the headline outcome of one seed's study.
type SeedResult struct {
	Seed       int64 // cfg.Seed actually run
	Detections int   // detected compromises
	Plaintext  int   // detections classified as plaintext breaches
	ValidPct   float64
	HasValid   bool // false when no registration attempts happened
	EligPct    float64
	Alarms     int   // integrity alarms (must be zero)
	Err        error // Study.Err, when construction or the run failed
	// Wall is the study's wall-clock duration. It is measurement metadata,
	// not a simulation output: the byte-identity contract between serial,
	// parallel, and distributed sweeps covers every other field, while
	// Wall is whatever the clock said. Comparisons zero it first.
	Wall time.Duration
}

// Outcome is the full sweep result, in seed order.
type Outcome struct {
	Results []SeedResult
}

// Run executes the sweep described by o.
func Run(o Options) *Outcome {
	if o.N <= 0 {
		return &Outcome{}
	}
	workers := o.Parallel
	if workers < 1 {
		workers = 1
	}
	if workers > o.N {
		workers = o.N
	}

	results := make([]SeedResult, o.N)
	pw := NewProgressWriter(o.Progress)
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= o.N {
					return
				}
				r := RunSeed(o.ConfigFor(int64(i + 1)))
				results[i] = r
				pw.Write(r)
			}
		}()
	}
	wg.Wait()
	pw.Close()
	return &Outcome{Results: results}
}

// RunSeed runs one study and distills its SeedResult. It is the unit of
// work a distributed sweep worker executes for one leased seed.
func RunSeed(cfg tripwire.Config) SeedResult {
	return RunSeedContext(context.Background(), cfg)
}

// RunSeedContext is RunSeed under a context: cancelling stops the study
// cleanly at the next wave boundary and surfaces ctx's error in the
// result. Distributed workers cancel when they lose their lease, so a
// fenced-off worker stops burning cycles on a seed that was re-issued.
func RunSeedContext(ctx context.Context, cfg tripwire.Config) (r SeedResult) {
	r = SeedResult{Seed: cfg.Seed}
	start := time.Now()
	// Named return: the deferred write must land in the value the caller
	// sees, including on the early error return.
	defer func() { r.Wall = time.Since(start) }()
	study := tripwire.New(tripwire.WithConfig(cfg))
	if err := study.RunContext(ctx); err != nil {
		r.Err = err
		return r
	}
	p := study.Pilot()

	dets := study.Detections()
	r.Detections = len(dets)
	for _, d := range dets {
		if study.Classify(d) == core.BreachPlaintext {
			r.Plaintext++
		}
	}
	att, valid := 0, 0
	for _, row := range report.Table1(p) {
		att += row.AttHard + row.AttEasy
		valid += row.ValidHard + row.ValidEasy
	}
	if att > 0 {
		r.ValidPct = 100 * float64(valid) / float64(att)
		r.HasValid = true
	}
	r.EligPct = 100 * report.Fig3(p).SuccessOnElig
	r.Alarms = len(p.Monitor.Alarms())
	return r
}

// ProgressLine formats the one-line per-seed progress record. The
// in-process pool and the distributed coordinator both emit exactly this
// line, so an operator watching stderr cannot tell the transports apart.
func ProgressLine(r SeedResult) string {
	if r.Err != nil {
		return fmt.Sprintf("seed %-6d ERROR: %v\n", r.Seed, r.Err)
	}
	return fmt.Sprintf("seed %-6d detections=%d hard=%d valid=%.0f%% eligOK=%.0f%% wall=%.2fs\n",
		r.Seed, r.Detections, r.Plaintext, r.ValidPct, r.EligPct, r.Wall.Seconds())
}

// ProgressWriter serializes per-seed progress lines through one writer
// goroutine: producers hand results to a channel and never share a lock
// or an io.Writer. Close flushes and waits for the writer to drain.
type ProgressWriter struct {
	ch   chan SeedResult
	done chan struct{}
}

// NewProgressWriter starts the writer goroutine over w. A nil w returns a
// no-op writer (Write and Close still safe to call).
func NewProgressWriter(w io.Writer) *ProgressWriter {
	if w == nil {
		return nil
	}
	pw := &ProgressWriter{ch: make(chan SeedResult, 64), done: make(chan struct{})}
	go func() {
		defer close(pw.done)
		for r := range pw.ch {
			io.WriteString(w, ProgressLine(r))
		}
	}()
	return pw
}

// Write enqueues one finished seed's progress line.
func (pw *ProgressWriter) Write(r SeedResult) {
	if pw == nil {
		return
	}
	pw.ch <- r
}

// Close flushes pending lines and stops the writer goroutine.
func (pw *ProgressWriter) Close() {
	if pw == nil {
		return
	}
	close(pw.ch)
	<-pw.done
}

// Render formats the aggregate summary block for the given scale label.
// It walks Results in seed order, so serial, parallel, and distributed
// sweeps render byte-identical output — except the final "seed wall time"
// row, which summarizes the wall-clock Wall fields and is excluded from
// the byte-identity contract (tests zero Wall before comparing).
func (oc *Outcome) Render(label string) string {
	var detections, plaintext, validRate, eligSuccess, alarms, wall []float64
	for _, r := range oc.Results {
		if r.Err != nil {
			continue
		}
		detections = append(detections, float64(r.Detections))
		plaintext = append(plaintext, float64(r.Plaintext))
		if r.HasValid {
			validRate = append(validRate, r.ValidPct)
		}
		eligSuccess = append(eligSuccess, r.EligPct)
		alarms = append(alarms, float64(r.Alarms))
		wall = append(wall, r.Wall.Seconds())
	}
	var b strings.Builder
	fmt.Fprintf(&b, "\nMulti-seed robustness ( %s scale )\n", label)
	fmt.Fprintf(&b, "  detections:            %s\n", stats.Summarize(detections))
	fmt.Fprintf(&b, "  plaintext verdicts:    %s\n", stats.Summarize(plaintext))
	fmt.Fprintf(&b, "  account validity %%:    %s\n", stats.Summarize(validRate))
	fmt.Fprintf(&b, "  success on eligible %%: %s\n", stats.Summarize(eligSuccess))
	fmt.Fprintf(&b, "  integrity alarms:      %s (must be all zero)\n", stats.Summarize(alarms))
	fmt.Fprintf(&b, "  seed wall time s:      %s\n", stats.Summarize(wall))
	return b.String()
}

// Failed reports why the sweep should exit non-zero: the first seed whose
// study carried an error, else the first seed that fired integrity alarms.
// A nil return means every seed ran clean.
func (oc *Outcome) Failed() error {
	for _, r := range oc.Results {
		if r.Err != nil {
			return fmt.Errorf("seed %d: %w", r.Seed, r.Err)
		}
	}
	for _, r := range oc.Results {
		if r.Alarms > 0 {
			return fmt.Errorf("integrity alarms fired (seed %d)", r.Seed)
		}
	}
	return nil
}
