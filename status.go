package tripwire

import (
	"fmt"
	"strings"
	"time"
)

// phase is the study lifecycle marker behind StudyStatus.Phase.
type phase int32

const (
	phasePending phase = iota
	phaseRunning
	phaseDone
	phaseFailed
	phaseInterrupted
)

func (p phase) String() string {
	switch p {
	case phasePending:
		return "pending"
	case phaseRunning:
		return "running"
	case phaseDone:
		return "done"
	case phaseFailed:
		return "failed"
	case phaseInterrupted:
		return "interrupted"
	default:
		return "phase(?)"
	}
}

// StudyStatus is the structured progress record of a study: everything a
// supervisor used to scrape out of the Summary text, as a JSON-ready
// value. It is safe to request from any goroutine at any point in the
// study's life — before, during, and after the run — and the service
// control plane (GET /studies/{id}) serves it verbatim.
//
// Every field is deterministic for a given configuration: no wall-clock
// timestamps appear here, so a run paused at a wave boundary and resumed
// from its checkpoint reports byte-identical final status to an
// uninterrupted run (a test pins this through the HTTP API at 1/2/4/8
// workers).
type StudyStatus struct {
	// Phase is the lifecycle position: pending (built, not started),
	// running, done, failed (validation or run error), or interrupted
	// (cancelled before the configured end date).
	Phase string `json:"phase"`
	Seed  int64  `json:"seed"`
	// Sites is the size of the synthetic web universe.
	Sites int       `json:"sites"`
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
	// VirtualNow is the simulation clock's current position.
	VirtualNow time.Time `json:"virtual_now"`
	// WavesDone/WavesTotal count completed registration waves against the
	// schedule implied by the configured batches.
	WavesDone  int `json:"waves_done"`
	WavesTotal int `json:"waves_total"`
	// EpochsRun counts completed timeline epochs (the checkpoint/resume
	// replay unit).
	EpochsRun uint64 `json:"epochs_run"`
	// Attempts counts crawl registration attempts recorded so far.
	Attempts int `json:"attempts"`
	// RegisteredSites counts distinct sites holding at least one valid
	// Tripwire registration.
	RegisteredSites int `json:"registered_sites"`
	// Detections counts sites the monitor has implicated so far.
	Detections int `json:"detections"`
	// IntegrityAlarms counts monitor integrity alarms; any non-zero value
	// means an unused honeypot account was accessed.
	IntegrityAlarms int `json:"integrity_alarms"`
	// Events is the event stream's high-water sequence number (see
	// EventsSince).
	Events uint64 `json:"events"`
	// Interrupted reports a run cancelled before the configured end date.
	Interrupted bool `json:"interrupted"`
	// Error carries the validation or run error, when there is one.
	Error string `json:"error,omitempty"`
}

// Status returns the study's structured progress record. It is cheap —
// atomic reads of a progress mirror the driver publishes at epoch
// boundaries — and safe to call concurrently with a running study.
func (s *Study) Status() StudyStatus {
	ph := phase(s.phase.Load())
	st := StudyStatus{
		Phase:       ph.String(),
		Seed:        s.cfg.Seed,
		Sites:       s.cfg.Web.NumSites,
		Start:       s.cfg.Start,
		End:         s.cfg.End,
		VirtualNow:  s.cfg.Start,
		Events:      s.events.Len(),
		Interrupted: ph == phaseInterrupted,
	}
	if ph == phaseFailed || ph == phaseInterrupted {
		// The terminal phase was stored after err, so observing it above
		// makes this read race-free.
		if err := s.err; err != nil {
			st.Error = err.Error()
		}
	}
	if s.pilot == nil {
		return st
	}
	pr := s.pilot.Progress()
	st.VirtualNow = pr.VirtualNow
	st.WavesDone = pr.WavesDone
	st.WavesTotal = pr.WavesTotal
	st.EpochsRun = pr.EpochsRun
	st.Attempts = pr.Attempts
	st.RegisteredSites = pr.RegisteredSites
	st.Detections = pr.Detections
	st.IntegrityAlarms = pr.IntegrityAlarms
	return st
}

// FormatStatus renders a StudyStatus as the human-readable block that
// heads Summary. Status is the data, FormatStatus the presentation; keep
// machine consumers on Status.
func FormatStatus(st StudyStatus) string {
	day := func(t time.Time) string { return t.Format("2006-01-02") }
	var b strings.Builder
	fmt.Fprintf(&b, "phase: %s   seed: %d   sites: %d\n", st.Phase, st.Seed, st.Sites)
	fmt.Fprintf(&b, "window: %s to %s   virtual now: %s\n", day(st.Start), day(st.End), day(st.VirtualNow))
	fmt.Fprintf(&b, "waves: %d/%d   epochs: %d   attempts: %d\n", st.WavesDone, st.WavesTotal, st.EpochsRun, st.Attempts)
	fmt.Fprintf(&b, "registered sites: %d   detections: %d   integrity alarms: %d   events: %d\n",
		st.RegisteredSites, st.Detections, st.IntegrityAlarms, st.Events)
	if st.Interrupted {
		b.WriteString("interrupted: the run stopped before the configured end date; completed waves remain valid\n")
	}
	if st.Error != "" {
		fmt.Fprintf(&b, "error: %s\n", st.Error)
	}
	return b.String()
}
