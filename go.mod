module tripwire

go 1.22
