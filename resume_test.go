package tripwire_test

import (
	"context"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"tripwire"
)

// resumeConfig is a fast study with several waves, breaches, and dumps.
func resumeConfig() tripwire.Config {
	cfg := tripwire.SmallConfig()
	cfg.Web.NumSites = 260
	start := func(y int, m time.Month, d int) time.Time {
		return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
	}
	cfg.Batches = []tripwire.Batch{
		{Name: "seed", Start: start(2014, 12, 10), Duration: 14 * 24 * time.Hour, FromRank: 1, ToRank: 130},
		{Name: "refresh", Start: start(2015, 11, 20), Duration: 21 * 24 * time.Hour, FromRank: 1, ToRank: 200},
	}
	cfg.NumUnused = 40
	cfg.NumControls = 2
	cfg.BreachRegistered = 4
	cfg.BreachUnregistered = 2
	cfg.OrganicUsersMin = 5
	cfg.OrganicUsersMax = 15
	cfg.CrawlWorkers = 2
	cfg.TimelineWorkers = 2
	return cfg
}

// TestStudyCheckpointResume cancels a study mid-run, resumes the newest
// checkpoint through the public API, and requires the resumed study's full
// report to match an uninterrupted run's byte for byte.
func TestStudyCheckpointResume(t *testing.T) {
	wantSummary := tripwire.New(tripwire.WithConfig(resumeConfig())).Run().Summary()

	dir := t.TempDir()
	s := tripwire.New(
		tripwire.WithConfig(resumeConfig()),
		tripwire.WithCheckpoint(dir, 1),
	)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		waves := 0
		for ev := range s.Events() {
			if ev.Kind == tripwire.EventWaveDone {
				if waves++; waves == 2 {
					cancel()
				}
			}
		}
	}()
	if err := s.RunContext(ctx); err == nil || !s.Interrupted() {
		t.Fatalf("study was not interrupted (err=%v)", err)
	}

	files, err := filepath.Glob(filepath.Join(dir, "checkpoint-*.twsnap"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no checkpoints written (err=%v)", err)
	}
	sort.Strings(files)

	resumed, err := tripwire.Resume(files[len(files)-1], tripwire.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	var events []tripwire.Event
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range resumed.Events() {
			events = append(events, ev)
		}
	}()
	if err := resumed.RunContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	<-done
	if resumed.Interrupted() {
		t.Fatal("resumed study reports Interrupted")
	}
	if got := resumed.Summary(); got != wantSummary {
		t.Fatal("resumed study's summary differs from the uninterrupted run")
	}
	// The resumed study replays the event sequence from the very start.
	if len(events) == 0 || events[0].Kind != tripwire.EventWaveDone || events[0].FromRank != 1 {
		t.Fatalf("resumed study did not replay events from the start: %+v", events[:min(3, len(events))])
	}
}

// TestResumeBadPath: Resume surfaces unreadable or corrupt snapshots as
// errors, never as a half-built study.
func TestResumeBadPath(t *testing.T) {
	if _, err := tripwire.Resume(filepath.Join(t.TempDir(), "nope.twsnap")); err == nil {
		t.Fatal("Resume of a missing file succeeded")
	}
	bad := filepath.Join(t.TempDir(), "bad.twsnap")
	if err := os.WriteFile(bad, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := tripwire.Resume(bad); err == nil {
		t.Fatal("Resume of a corrupt file succeeded")
	}
}

// TestStudyLogSpillOption: WithLogSpill bounds the resident login log
// without changing any result.
func TestStudyLogSpillOption(t *testing.T) {
	ref := tripwire.New(tripwire.WithConfig(resumeConfig())).Run()
	sp := tripwire.New(
		tripwire.WithConfig(resumeConfig()),
		tripwire.WithLogSpill(t.TempDir(), 16),
	).Run()
	if err := sp.Pilot().Provider.SpillErr(); err != nil {
		t.Fatal(err)
	}
	if sp.Pilot().Provider.SpilledSegments() == 0 {
		t.Fatal("budget never forced a spill")
	}
	if got, want := sp.Summary(), ref.Summary(); got != want {
		t.Fatal("spilling study's summary differs from all-resident run")
	}
}
