package tripwire

// Ablation benchmarks for the paper's proposed extensions (§6.2.2, §7.2,
// §7.3): multi-language heuristics, search-assisted page discovery, and the
// attacker's sample-don't-sweep evasion strategy. Each bench measures the
// extended configuration and asserts the expected direction of the effect
// against the prototype baseline.

import (
	"testing"
	"time"

	"tripwire/internal/attacker"
	"tripwire/internal/browser"
	"tripwire/internal/captcha"
	"tripwire/internal/crawler"
	"tripwire/internal/emailprovider"
	"tripwire/internal/geo"
	"tripwire/internal/identity"
	"tripwire/internal/imap"
	"tripwire/internal/simclock"
	"tripwire/internal/webgen"
)

// crawlSample crawls ranks 1..n of a fresh universe under cfg and returns
// the number of OK submissions.
func crawlSample(b *testing.B, ccfg crawler.Config, n int, withSearch bool) int {
	b.Helper()
	wcfg := webgen.DefaultConfig()
	wcfg.NumSites = n
	universe := webgen.Generate(wcfg)
	if withSearch {
		ccfg.SearchFn = universe.SearchRegistrationPages
	}
	gen := identity.NewGenerator("bigmail.test", 61)
	solver := captcha.NewService(0.1, 0.2, 62)
	c := crawler.New(ccfg, solver)
	ok := 0
	for rank := 1; rank <= n; rank++ {
		site, _ := universe.SiteByRank(rank)
		br := browser.New(browser.WithTransport(&browser.HandlerTransport{Handler: universe}))
		if c.Register(br, "http://"+site.Domain+"/", gen.New(identity.Hard)).Code == crawler.CodeOKSubmission {
			ok++
		}
	}
	return ok
}

// BenchmarkAblationLanguagePacks compares English-only crawling with the
// §7.2 multi-language extension: "non-English sites alone make up more than
// forty percent of all sites, none of which are presently evaluated."
func BenchmarkAblationLanguagePacks(b *testing.B) {
	const n = 250
	base := crawler.DefaultConfig()
	base.RateLimit = 0
	withPacks := base
	withPacks.Packs = crawler.BuiltinPacks()

	var okBase, okPacks int
	for i := 0; i < b.N; i++ {
		okBase = crawlSample(b, base, n, false)
		okPacks = crawlSample(b, withPacks, n, false)
		if okPacks <= okBase {
			b.Fatalf("language packs did not increase coverage: %d vs %d", okPacks, okBase)
		}
	}
	b.ReportMetric(float64(okBase), "okSites/english-only")
	b.ReportMetric(float64(okPacks), "okSites/with-packs")
}

// BenchmarkAblationSearchEngine compares link-text-only discovery with the
// §6.2.2 search-assisted extension that finds registration pages hidden
// behind image links and opaque paths.
func BenchmarkAblationSearchEngine(b *testing.B) {
	const n = 250
	base := crawler.DefaultConfig()
	base.RateLimit = 0

	var okBase, okSearch int
	for i := 0; i < b.N; i++ {
		okBase = crawlSample(b, base, n, false)
		okSearch = crawlSample(b, base, n, true)
		if okSearch < okBase {
			b.Fatalf("search assist reduced coverage: %d vs %d", okSearch, okBase)
		}
	}
	b.ReportMetric(float64(okBase), "okSites/links-only")
	b.ReportMetric(float64(okSearch), "okSites/with-search")
}

// BenchmarkAblationMultiStageSupport compares the prototype (which "makes
// no attempt at handling multi-step forms", §7.2) against the extension
// that continues through page two.
func BenchmarkAblationMultiStageSupport(b *testing.B) {
	wcfg := webgen.DefaultConfig()
	wcfg.NumSites = 1500
	universe := webgen.Generate(wcfg)
	// Collect multi-stage eligible sites.
	var targets []*webgen.Site
	for _, s := range universe.Sites() {
		if s.Eligible() && s.MultiStage && !s.JSForm && !s.ObscureRegLink && s.Captcha == captcha.None && !s.OddFieldNames {
			targets = append(targets, s)
		}
	}
	if len(targets) < 3 {
		b.Fatalf("only %d multi-stage targets", len(targets))
	}
	run := func(multiStage bool) (ok int) {
		ccfg := crawler.DefaultConfig()
		ccfg.RateLimit = 0
		ccfg.MultiStageSupport = multiStage
		c := crawler.New(ccfg, captcha.NewService(0, 0, 81))
		gen := identity.NewGenerator("bigmail.test", 82)
		for _, s := range targets {
			br := browser.New(browser.WithTransport(&browser.HandlerTransport{Handler: universe}))
			if c.Register(br, "http://"+s.Domain+"/", gen.New(identity.Hard)).Code == crawler.CodeOKSubmission {
				ok++
			}
		}
		return ok
	}
	var base, ext int
	for i := 0; i < b.N; i++ {
		base = run(false)
		ext = run(true)
		if ext <= base {
			b.Fatalf("multi-stage support did not help: %d vs %d on %d sites", ext, base, len(targets))
		}
	}
	b.ReportMetric(float64(base), "okSites/prototype")
	b.ReportMetric(float64(ext), "okSites/multistage")
	b.ReportMetric(float64(len(targets)), "targets")
}

// BenchmarkAblationEvasionSampling sweeps the attacker's CheckFraction and
// measures how many planted honey credentials trip the wire: detection odds
// fall roughly in proportion to the fraction of accounts the attacker tests
// (paper §7.3).
func BenchmarkAblationEvasionSampling(b *testing.B) {
	run := func(fraction float64) int {
		start := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
		end := start.Add(300 * 24 * time.Hour)
		clock := simclock.New(start)
		sched := simclock.NewScheduler(clock)
		provider := emailprovider.New("bigmail.test")
		provider.Now = clock.Now
		pool := attacker.NewProxyPool(geo.NewSpace(), 71, 0.1)
		stuffer := attacker.NewStuffer(imap.NewServer(provider), pool, clock.Now)
		cfg := attacker.DefaultCampaignConfig(end)
		cfg.CheckFraction = fraction
		cfg.SpamProb = 0
		camp := attacker.NewCampaign(cfg, sched, stuffer, provider)

		// Plant 40 honey accounts in one plaintext store.
		gen := identity.NewGenerator("bigmail.test", 72)
		store := webgen.NewStore(webgen.StorePlaintext)
		planted := make(map[string]bool)
		for i := 0; i < 40; i++ {
			id := gen.New(identity.Easy)
			if provider.CreateAccount(id.Email, id.FullName(), id.Password) != nil {
				continue
			}
			store.Create(id.Username, id.Email, id.Password, "", start)
			planted[id.Email] = true
		}
		camp.Breach("evade.test", store, start.Add(24*time.Hour))
		sched.RunUntil(end)

		tripped := make(map[string]bool)
		for _, ev := range provider.AllLogins() {
			if planted[ev.Account] {
				tripped[ev.Account] = true
			}
		}
		return len(tripped)
	}

	var full, half, tenth int
	for i := 0; i < b.N; i++ {
		full = run(1.0)
		half = run(0.5)
		tenth = run(0.1)
		if !(full > half && half > tenth) {
			b.Fatalf("evasion ordering broken: full=%d half=%d tenth=%d", full, half, tenth)
		}
	}
	b.ReportMetric(float64(full), "tripped/check-all")
	b.ReportMetric(float64(half), "tripped/check-half")
	b.ReportMetric(float64(tenth), "tripped/check-tenth")
}
