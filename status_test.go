package tripwire_test

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"tripwire"
)

// TestStatusLifecycle: the structured status moves pending → done and its
// counters agree with the study's own accessors; the JSON form carries
// the control plane's field names.
func TestStatusLifecycle(t *testing.T) {
	s := tripwire.New(tripwire.WithConfig(resumeConfig()))
	st := s.Status()
	if st.Phase != "pending" || st.WavesDone != 0 || st.Detections != 0 {
		t.Fatalf("pre-run status = %+v", st)
	}
	if st.WavesTotal == 0 {
		t.Fatal("WavesTotal not derived from the configured batches")
	}
	if !st.VirtualNow.Equal(st.Start) {
		t.Fatalf("pre-run VirtualNow = %s, want Start %s", st.VirtualNow, st.Start)
	}

	s.Run()
	st = s.Status()
	if st.Phase != "done" || st.Interrupted || st.Error != "" {
		t.Fatalf("post-run status = %+v", st)
	}
	if st.WavesDone != st.WavesTotal {
		t.Fatalf("waves %d/%d after a complete run", st.WavesDone, st.WavesTotal)
	}
	if got := len(s.Detections()); st.Detections != got {
		t.Fatalf("status detections %d, study has %d", st.Detections, got)
	}
	if st.Events != s.EventSeq() || st.Events == 0 {
		t.Fatalf("status events %d, stream high-water %d", st.Events, s.EventSeq())
	}
	if st.EpochsRun == 0 || st.Attempts == 0 || st.RegisteredSites == 0 {
		t.Fatalf("progress counters empty: %+v", st)
	}
	if st.IntegrityAlarms != 0 {
		t.Fatalf("healthy run reports %d integrity alarms", st.IntegrityAlarms)
	}

	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"phase"`, `"seed"`, `"sites"`, `"virtual_now"`, `"waves_done"`, `"waves_total"`, `"epochs_run"`, `"registered_sites"`, `"detections"`, `"integrity_alarms"`, `"events"`, `"interrupted"`} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("status JSON missing %s: %s", key, raw)
		}
	}
	if strings.Contains(string(raw), `"error"`) {
		t.Errorf("error key present on a clean run: %s", raw)
	}

	// Summary's header is FormatStatus over the same record.
	if !strings.Contains(s.Summary(), tripwire.FormatStatus(st)) {
		t.Fatal("Summary does not embed FormatStatus(Status())")
	}
}

// TestStatusFailedValidation: a study that failed validation reports
// phase "failed" with the error inline, before and after Run.
func TestStatusFailedValidation(t *testing.T) {
	cfg := resumeConfig()
	cfg.Web.NumSites = 0
	s := tripwire.New(tripwire.WithConfig(cfg))
	st := s.Status()
	if st.Phase != "failed" || st.Error == "" {
		t.Fatalf("status = %+v", st)
	}
	s.Run()
	if st := s.Status(); st.Phase != "failed" || st.Error == "" {
		t.Fatalf("status after Run = %+v", st)
	}
}

// TestEventsSinceMultiSubscriber: every subscription is an independent
// replay; EventsSince(k) yields exactly the suffix a from-start
// subscriber sees; concurrent mid-run subscribers all observe the same
// gapless stream.
func TestEventsSinceMultiSubscriber(t *testing.T) {
	s := tripwire.New(tripwire.WithConfig(resumeConfig()))

	// Two live subscribers attached before the run.
	var wg sync.WaitGroup
	liveA := s.Events()
	liveB := s.Events()
	var gotA, gotB []tripwire.Event
	wg.Add(2)
	go func() {
		defer wg.Done()
		for ev := range liveA {
			gotA = append(gotA, ev)
		}
	}()
	go func() {
		defer wg.Done()
		for ev := range liveB {
			gotB = append(gotB, ev)
		}
	}()
	s.Run()
	wg.Wait()

	if s.Err() != nil {
		t.Fatal(s.Err())
	}
	if len(gotA) == 0 || len(gotA) != len(gotB) {
		t.Fatalf("live subscribers disagree: %d vs %d events", len(gotA), len(gotB))
	}

	// Post-run replays: full stream, then a suffix.
	var full []tripwire.Event
	for ev := range s.Events() {
		full = append(full, ev)
	}
	if len(full) != len(gotA) {
		t.Fatalf("replay has %d events, live saw %d", len(full), len(gotA))
	}
	k := uint64(len(full) / 2)
	var suffix []tripwire.Event
	for ev := range s.EventsSince(k) {
		suffix = append(suffix, ev)
	}
	if len(suffix) != len(full)-int(k) {
		t.Fatalf("EventsSince(%d) yielded %d events, want %d", k, len(suffix), len(full)-int(k))
	}
	for i, ev := range suffix {
		want := full[int(k)+i]
		if ev.Kind != want.Kind || !ev.At.Equal(want.At) || ev.FromRank != want.FromRank {
			t.Fatalf("suffix[%d] = %+v, want %+v", i, ev, want)
		}
	}
	// Beyond the high-water mark: clamped, so a closed stream just ends.
	if _, ok := <-s.EventsSince(1 << 30); ok {
		t.Fatal("EventsSince beyond high-water delivered an event on a closed stream")
	}
	if s.EventSeq() != uint64(len(full)) {
		t.Fatalf("EventSeq = %d, want %d", s.EventSeq(), len(full))
	}
}

// TestEventsSinceContextDetaches: an abandoned subscriber's channel
// closes when its context does, mid-stream.
func TestEventsSinceContextDetaches(t *testing.T) {
	s := tripwire.New(tripwire.WithConfig(resumeConfig())).Run()
	ctx, cancel := context.WithCancel(context.Background())
	ch := s.EventsSinceContext(ctx, 0)
	<-ch // at least one event flows
	cancel()
	for range ch {
	} // must terminate promptly rather than hang
}

// TestResumeRejectsConflictingOptions: the two New-only options fail
// fast, each error naming the offending option, before any snapshot IO.
func TestResumeRejectsConflictingOptions(t *testing.T) {
	if _, err := tripwire.Resume("nonexistent.twsnap", tripwire.WithConfig(tripwire.SmallConfig())); err == nil || !strings.Contains(err.Error(), "WithConfig") {
		t.Fatalf("Resume with WithConfig: %v", err)
	}
	if _, err := tripwire.Resume("nonexistent.twsnap", tripwire.WithSeed(1)); err == nil || !strings.Contains(err.Error(), "WithSeed") {
		t.Fatalf("Resume with WithSeed: %v", err)
	}
}
