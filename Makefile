# Tier-1 verification loop for the Tripwire reproduction.
#
#   make build   compile everything
#   make test    the seed tier-1 gate (build + tests)
#   make race    full suite under the race detector
#   make ci      what a PR must pass: build, vet, race-enabled tests
#   make bench   parallel crawl engine benchmark (1/2/4/8 workers)
#   make fuzz    a short fuzzing session on the crawler heuristics

GO ?= go

.PHONY: build test race ci bench fuzz

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race ./...

ci: build
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench BenchmarkParallelCrawl -benchtime 3x ./internal/sim/

fuzz:
	$(GO) test -fuzz FuzzFieldHeuristics -fuzztime 30s ./internal/crawler/
