# Tier-1 verification loop for the Tripwire reproduction.
#
#   make build       compile everything
#   make test        the seed tier-1 gate (build + tests)
#   make race        full suite under the race detector
#   make ci          what a PR must pass: build, vet, race tests, bench smoke
#   make bench       parallel crawl engine benchmark (1/2/4/8 workers)
#   make bench-json  run the hot-path benchmarks and write BENCH_crawl.json
#                    (ns/op, allocs/op, pages/s) with BENCH_baseline.json
#                    embedded for before/after comparison
#   make fuzz        a short fuzzing session on the crawler heuristics

GO ?= go

# Packages with per-component hot-path benchmarks (tokenize/parse/classify/
# serve). The end-to-end crawl benchmark lives in ./internal/sim/ and runs
# with a smaller iteration count because one iteration is a full wave.
BENCH_PKGS = ./internal/htmldom/ ./internal/crawler/ ./internal/webgen/

.PHONY: build test race ci bench bench-json fuzz

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race ./...

ci: build
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test -run xxx -bench . -benchtime 1x ./...

bench:
	$(GO) test -run xxx -bench BenchmarkParallelCrawl -benchtime 3x ./internal/sim/

bench-json: build
	@{ $(GO) test -run xxx -bench . -benchmem -benchtime 1000x $(BENCH_PKGS) ; \
	   $(GO) test -run xxx -bench BenchmarkParallelCrawl -benchmem -benchtime 2x ./internal/sim/ ; } \
	 | $(GO) run ./cmd/tripwire-bench -baseline BENCH_baseline.json -out BENCH_crawl.json \
	     -note "hot-path run vs seed baseline; acceptance: tokenize+parse+classify allocs/op down >=40% vs baseline (allocs/op is deterministic; ns/op on shared hardware is noisy)"
	@echo "wrote BENCH_crawl.json"

fuzz:
	$(GO) test -fuzz FuzzFieldHeuristics -fuzztime 30s ./internal/crawler/
