# Tier-1 verification loop for the Tripwire reproduction.
#
#   make build       compile everything
#   make test        the seed tier-1 gate (build + tests)
#   make race        full suite under the race detector
#   make ci          what a PR must pass: build, vet, race tests, snapshot/
#                    crawler/epoch-equivalence fuzz corpora as seed tests,
#                    resume byte-identity smoke (workers grid incl. 8,
#                    under -race), the 16-worker timeline invariance smoke
#                    (under -race), the 1M-account
#                    lazy-store smoke (-short, under -race), the serve
#                    smoke (boot tripwire-serve, pause/resume a study over
#                    HTTP, require an SSE detection + a signed webhook
#                    delivery, under -race), the distributed-sweep smoke
#                    (coordinator + two in-process workers over loopback
#                    HTTP, byte-identity incl. a worker killed mid-seed,
#                    under -race), bench smoke, and the
#                    overhead/alloc/heap gates
#   make bench       parallel crawl engine benchmark (1/4/8/16 workers, plus
#                    the lazy 10k-universe variant)
#   make bench-json  run the hot-path benchmarks and write BENCH_crawl.json
#                    (ns/op, allocs/op, pages/s) with BENCH_baseline.json
#                    embedded for before/after comparison
#   make fuzz        a short fuzzing session on the crawler heuristics
#   make metrics-doc-check  every registered metric name appears in DESIGN.md
#   make bench-overhead     crawl bench with metrics on vs off in one run;
#                           fails if mean pages/s drops >3% or allocs/op grows
#   make bench-compare      fresh benchmark sweep diffed against
#                           BENCH_baseline.json; fails if any benchmark's
#                           allocs/op grew >5% (ns/op stays informational)
#                           or any memory-envelope figure grew >5%
#                           (heap-MB: the lazy 10k wave and the 1M-site /
#                           10M-account heap envelopes; ckpt-full-KB /
#                           ckpt-incr-KB: the incremental-checkpoint split;
#                           allocs/event: the timeline engine's per-event
#                           allocation rate)

GO ?= go

# Packages with per-component hot-path benchmarks (tokenize/parse/classify/
# serve). The end-to-end crawl benchmark lives in ./internal/sim/ and runs
# with a smaller iteration count because one iteration is a full wave.
BENCH_PKGS = ./internal/htmldom/ ./internal/crawler/ ./internal/webgen/ ./internal/emailprovider/

# The full tracked benchmark sweep, shared by bench-json (records it) and
# bench-compare (gates on it). Fixed -benchtime everywhere keeps allocs/op
# bit-for-bit reproducible: amortized setup allocations divide by the same
# iteration count in every run, so baseline diffs are exact.
define BENCH_RUN
{ $(GO) test -run xxx -bench . -benchmem -benchtime 1000x $(BENCH_PKGS) ; \
  $(GO) test -run xxx -bench BenchmarkParallelCrawl -benchmem -benchtime 2x ./internal/sim/ ; \
  $(GO) test -run xxx -bench BenchmarkTimeline -benchmem -benchtime 1x ./internal/sim/ ; \
  $(GO) test -run xxx -bench BenchmarkHeapEnvelope -benchmem -benchtime 1x ./internal/sim/ ; \
  $(GO) test -run xxx -bench BenchmarkCheckpoint -benchmem -benchtime 1x ./internal/sim/ ; \
  $(GO) test -run xxx -bench BenchmarkSweep -benchmem -benchtime 1x ./internal/sweep/ ; \
  $(GO) test -run xxx -bench BenchmarkDistSweep -benchmem -benchtime 1x ./internal/distsweep/ ; }
endef

.PHONY: build test race ci bench bench-json fuzz metrics-doc-check bench-overhead bench-compare

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race ./...

ci: build metrics-doc-check
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test -run Fuzz ./internal/snapshot/ ./internal/crawler/ ./internal/simclock/
	$(GO) test -race -run 'TestResumeByteIdentical|TestStudyCheckpointResume' ./internal/sim/ .
	$(GO) test -race -run 'TestTimelineWorkerInvariance/workers=16' ./internal/sim/
	$(GO) test -race -short -run 'TestLazyMillionAccountSmoke|TestIncrementalCheckpointEquivalence' ./internal/sim/
	$(GO) test -race -run 'TestServeSmoke' ./cmd/tripwire-serve/
	$(GO) test -race -run 'TestDistSweepByteIdentical|TestDistSweepWorkerLossByteIdentical' ./internal/distsweep/
	$(GO) test -run xxx -bench . -benchtime 1x $(BENCH_PKGS)
	$(GO) test -run xxx -bench 'BenchmarkParallelCrawl$$/workers=8' -benchtime 1x ./internal/sim/
	$(MAKE) bench-overhead
	$(MAKE) bench-compare

# Every metric name registered anywhere in the tree must be documented in
# DESIGN.md's Observability inventory, so the docs can't silently rot.
metrics-doc-check:
	@missing=0; \
	for name in $$(grep -rhoE '"tripwire_[a-z0-9_]+"' internal cmd | tr -d '"' | sort -u); do \
	  grep -q "$$name" DESIGN.md || { echo "metrics-doc-check: $$name not documented in DESIGN.md"; missing=1; }; \
	done; \
	[ $$missing -eq 0 ] && echo "metrics-doc-check: all registered metric names documented"

# Same-run A/B: the metrics-on crawl benchmark must stay within a 3% mean
# pages/s drop of its metrics-free twin and must not allocate more per op.
# The regex pins the 2.3k-universe pair; the 10k variant has no metrics twin.
bench-overhead: build
	$(GO) test -run xxx -bench 'BenchmarkParallelCrawl(Metrics)?$$' -benchmem -benchtime 2x ./internal/sim/ \
	 | $(GO) run ./cmd/tripwire-bench -assert-overhead 3 -out /dev/null

bench:
	$(GO) test -run xxx -bench BenchmarkParallelCrawl -benchtime 3x ./internal/sim/

bench-json: build
	@$(BENCH_RUN) \
	 | $(GO) run ./cmd/tripwire-bench -baseline BENCH_baseline.json -out BENCH_crawl.json \
	     -note "hot-path run vs seed baseline; crawl workers grid 1/4/8/16 on the 2.3k universe plus the lazy 10k-universe wave, timeline engine events/s, allocs/event and scaling-eff at 1/4/8/16 workers (adaptive align), multi-seed sweep seeds/s (in-process pool and distributed coordinator/worker over loopback HTTP), the 1M-site and 10M-account spilled-log heap envelopes (heap-MB), and the incremental-checkpoint byte split (ckpt-full-KB vs ckpt-incr-KB); allocs/op, post-GC live heap, and checkpoint bytes are deterministic, ns/op on shared hardware is noisy"
	@echo "wrote BENCH_crawl.json"

# Regression gates: re-run the tracked sweep and diff the deterministic
# allocs/op figures and the post-GC live-heap figures (heap-MB) against
# BENCH_baseline.json. Benchmarks newer than the baseline are skipped
# until the baseline is regenerated.
bench-compare: build
	@$(BENCH_RUN) \
	 | $(GO) run ./cmd/tripwire-bench -baseline BENCH_baseline.json -assert-allocs 5 -assert-heap 5 -out /dev/null

fuzz:
	$(GO) test -fuzz FuzzFieldHeuristics -fuzztime 30s ./internal/crawler/
