// Command tripwire-bench converts `go test -bench` output into the
// tracked BENCH_crawl.json format, so hot-path regressions show up as a
// diff instead of a feeling.
//
// It reads benchmark text on stdin and writes JSON with one entry per
// benchmark: ns/op, B/op, allocs/op, and any custom metrics the benchmark
// reported (MB/s, sites/s, pages/s). With -baseline, the named file's
// benchmark map is embedded under "baseline" so before/after live in one
// document.
//
// With -assert-overhead PCT it also gates the observability tax: every
// BenchmarkParallelCrawlMetrics/workers=N in the input is compared to its
// metrics-free twin BenchmarkParallelCrawl/workers=N *from the same run*
// (same machine, same load — the only comparison that is sound), and the
// command exits non-zero if pages/s regressed by more than PCT percent or
// the instrumented benchmark allocates more per op.
//
// With -assert-allocs PCT (requires -baseline) it gates allocation
// regressions: every benchmark on stdin that also appears in the baseline
// with an allocs/op figure is compared, and the command exits non-zero if
// any current allocs/op exceeds its baseline by more than PCT percent.
// allocs/op is deterministic for a fixed -benchtime, so this check is
// sound on shared hardware where ns/op is not; ns/op stays informational.
//
// With -assert-heap PCT (requires -baseline) it gates memory-envelope
// regressions the same way, over the heap-MB custom metric that the
// lazy-universe and heap-envelope benchmarks report (live heap after a
// forced GC, so it is stable across machines in a way wall-clock time is
// not), the ckpt-full-KB / ckpt-incr-KB figures that BenchmarkCheckpoint
// reports (full-snapshot size vs bytes re-encoded on a steady-state wave),
// and the allocs/event figure BenchmarkTimeline reports (allocations per
// fired timeline event, a property of the engine and protocol hot paths).
// Benchmarks without a given figure on both sides are skipped.
//
// Usage:
//
//	go test -run xxx -bench . -benchmem ./... | tripwire-bench -out BENCH_crawl.json -baseline BENCH_baseline.json
//	go test -run xxx -bench ParallelCrawl -benchmem ./internal/sim/ | tripwire-bench -assert-overhead 3
//	go test -run xxx -bench . -benchmem ./... | tripwire-bench -baseline BENCH_baseline.json -assert-allocs 5 -out /dev/null
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's measurements.
type Result struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Doc is the written BENCH JSON document.
type Doc struct {
	Schema     string            `json:"schema"`
	Note       string            `json:"note,omitempty"`
	Baseline   map[string]Result `json:"baseline,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// parseLine parses one `BenchmarkName-8  N  1234 ns/op  ...` line; ok is
// false for non-benchmark lines (headers, PASS, pkg banners).
func parseLine(line string) (name string, r Result, ok bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return "", r, false
	}
	name = f[0]
	// Strip the -GOMAXPROCS suffix so names are machine-independent.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return "", r, false
	}
	r.Iterations = iters
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return "", r, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			b := v
			r.BytesPerOp = &b
		case "allocs/op":
			a := v
			r.AllocsPerOp = &a
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = v
		}
	}
	return name, r, true
}

// assertOverhead compares each metrics-on benchmark to its metrics-off
// twin from the same run. The pages/s budget is applied to the mean drop
// across worker counts (a single worker count at low iteration counts is
// dominated by scheduler noise, not the instruments); allocs/op — which is
// deterministic up to goroutine bookkeeping — gets a 0.1% tolerance.
func assertOverhead(benchmarks map[string]Result, maxPct float64) (checked int, breaches []string) {
	const base = "BenchmarkParallelCrawl/"
	const metered = "BenchmarkParallelCrawlMetrics/"
	var dropSum float64
	for name, m := range benchmarks {
		if !strings.HasPrefix(name, metered) {
			continue
		}
		variant := strings.TrimPrefix(name, metered)
		b, ok := benchmarks[base+variant]
		if !ok {
			breaches = append(breaches, fmt.Sprintf("%s: no metrics-free twin %s in this run", name, base+variant))
			continue
		}
		basePages, meteredPages := b.Metrics["pages/s"], m.Metrics["pages/s"]
		if basePages <= 0 || meteredPages <= 0 {
			breaches = append(breaches, fmt.Sprintf("%s: missing pages/s metric (base %v, metrics %v)", variant, basePages, meteredPages))
			continue
		}
		checked++
		drop := 100 * (basePages - meteredPages) / basePages
		dropSum += drop
		fmt.Fprintf(os.Stderr, "tripwire-bench: %-12s pages/s %.0f -> %.0f (%+.2f%%)\n", variant, basePages, meteredPages, -drop)
		if b.AllocsPerOp != nil && m.AllocsPerOp != nil && *m.AllocsPerOp > *b.AllocsPerOp*1.001 {
			breaches = append(breaches, fmt.Sprintf("%s: allocs/op grew with metrics on (%.0f -> %.0f)",
				variant, *b.AllocsPerOp, *m.AllocsPerOp))
		}
	}
	if checked > 0 {
		if mean := dropSum / float64(checked); mean > maxPct {
			breaches = append(breaches, fmt.Sprintf("mean pages/s drop with metrics on is %.2f%% across %d worker counts, budget %.1f%%",
				mean, checked, maxPct))
		}
	}
	return checked, breaches
}

// assertAllocs compares every current benchmark against its baseline
// entry, allocs/op only. Names absent from the baseline (new benchmarks)
// and entries without alloc figures are skipped, so adding a benchmark
// never breaks the gate; it starts being enforced once the baseline is
// regenerated with it included.
func assertAllocs(current, baseline map[string]Result, maxPct float64) (checked int, breaches []string) {
	names := make([]string, 0, len(current))
	for name := range current {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		cur, base := current[name], baseline[name]
		if cur.AllocsPerOp == nil || base.AllocsPerOp == nil {
			continue
		}
		checked++
		growth := 0.0
		if *base.AllocsPerOp > 0 {
			growth = 100 * (*cur.AllocsPerOp - *base.AllocsPerOp) / *base.AllocsPerOp
		}
		if growth > maxPct {
			breaches = append(breaches, fmt.Sprintf("%s: allocs/op %.0f -> %.0f (%+.2f%%, budget %.1f%%)",
				name, *base.AllocsPerOp, *cur.AllocsPerOp, growth, maxPct))
			continue
		}
		fmt.Fprintf(os.Stderr, "tripwire-bench: %-50s allocs/op %.0f -> %.0f (%+.2f%%)\n",
			name, *base.AllocsPerOp, *cur.AllocsPerOp, growth)
	}
	return checked, breaches
}

// memoryGatedUnits are the deterministic memory-envelope metrics gated by
// -assert-heap: post-GC live heap (heap-MB), the checkpoint byte split
// (ckpt-full-KB for a complete re-encode, ckpt-incr-KB for the bytes a
// steady-state wave's incremental checkpoint actually re-encoded), and the
// timeline engine's allocation rate (allocs/event, allocations per fired
// event over BenchmarkTimeline's timed region). All four are properties of
// the retained data structures and the hot-path code, not of the machine.
var memoryGatedUnits = []string{"heap-MB", "ckpt-full-KB", "ckpt-incr-KB", "allocs/event"}

// assertHeap compares every current benchmark's memory-envelope figures
// (memoryGatedUnits) against its baseline entry. A sustained growth past
// the budget means an envelope regressed — e.g. the login log stopped
// spilling, lazy materialization turned eager, or a checkpoint section
// cache stopped reusing bytes.
func assertHeap(current, baseline map[string]Result, maxPct float64) (checked int, breaches []string) {
	names := make([]string, 0, len(current))
	for name := range current {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, unit := range memoryGatedUnits {
			cur, ok := current[name].Metrics[unit]
			base, okBase := baseline[name].Metrics[unit]
			if !ok || !okBase {
				continue
			}
			checked++
			growth := 0.0
			if base > 0 {
				growth = 100 * (cur - base) / base
			}
			if growth > maxPct {
				breaches = append(breaches, fmt.Sprintf("%s: %s %.1f -> %.1f (%+.2f%%, budget %.1f%%)",
					name, unit, base, cur, growth, maxPct))
				continue
			}
			fmt.Fprintf(os.Stderr, "tripwire-bench: %-50s %s %.1f -> %.1f (%+.2f%%)\n",
				name, unit, base, cur, growth)
		}
	}
	return checked, breaches
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	baseline := flag.String("baseline", "", "existing BENCH JSON whose benchmarks become this document's baseline")
	note := flag.String("note", "", "free-form note recorded in the document")
	assertPct := flag.Float64("assert-overhead", 0, "fail if the metrics-on crawl benchmark is more than this % slower (pages/s) than its metrics-free twin, or allocates more")
	assertAllocsPct := flag.Float64("assert-allocs", 0, "fail if any benchmark's allocs/op exceeds its -baseline entry by more than this % (new benchmarks without a baseline entry are skipped)")
	assertHeapPct := flag.Float64("assert-heap", 0, "fail if any benchmark's heap-MB, ckpt-full-KB, ckpt-incr-KB, or allocs/event metric exceeds its -baseline entry by more than this % (benchmarks without the figure on both sides are skipped)")
	flag.Parse()

	if *assertAllocsPct > 0 && *baseline == "" {
		fmt.Fprintln(os.Stderr, "tripwire-bench: -assert-allocs requires -baseline")
		os.Exit(2)
	}
	if *assertHeapPct > 0 && *baseline == "" {
		fmt.Fprintln(os.Stderr, "tripwire-bench: -assert-heap requires -baseline")
		os.Exit(2)
	}

	doc := Doc{Schema: "tripwire-bench/1", Note: *note, Benchmarks: make(map[string]Result)}

	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tripwire-bench:", err)
			os.Exit(1)
		}
		var base Doc
		if err := json.Unmarshal(data, &base); err != nil {
			fmt.Fprintf(os.Stderr, "tripwire-bench: parsing %s: %v\n", *baseline, err)
			os.Exit(1)
		}
		doc.Baseline = base.Benchmarks
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if name, r, ok := parseLine(sc.Text()); ok {
			doc.Benchmarks[name] = r
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "tripwire-bench:", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "tripwire-bench: no benchmark lines on stdin")
		os.Exit(1)
	}

	if *assertPct > 0 {
		checked, breaches := assertOverhead(doc.Benchmarks, *assertPct)
		for _, b := range breaches {
			fmt.Fprintln(os.Stderr, "tripwire-bench: OVERHEAD:", b)
		}
		if len(breaches) > 0 {
			os.Exit(1)
		}
		if checked == 0 {
			fmt.Fprintln(os.Stderr, "tripwire-bench: -assert-overhead found no ParallelCrawlMetrics benchmarks on stdin")
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "tripwire-bench: metrics overhead within %.1f%% budget across %d worker counts\n", *assertPct, checked)
	}

	if *assertAllocsPct > 0 {
		checked, breaches := assertAllocs(doc.Benchmarks, doc.Baseline, *assertAllocsPct)
		for _, b := range breaches {
			fmt.Fprintln(os.Stderr, "tripwire-bench: ALLOC REGRESSION:", b)
		}
		if len(breaches) > 0 {
			os.Exit(1)
		}
		if checked == 0 {
			fmt.Fprintln(os.Stderr, "tripwire-bench: -assert-allocs matched no benchmarks against the baseline")
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "tripwire-bench: allocs/op within %.1f%% of baseline across %d benchmarks\n", *assertAllocsPct, checked)
	}

	if *assertHeapPct > 0 {
		checked, breaches := assertHeap(doc.Benchmarks, doc.Baseline, *assertHeapPct)
		for _, b := range breaches {
			fmt.Fprintln(os.Stderr, "tripwire-bench: HEAP REGRESSION:", b)
		}
		if len(breaches) > 0 {
			os.Exit(1)
		}
		if checked == 0 {
			fmt.Fprintln(os.Stderr, "tripwire-bench: -assert-heap matched no memory-envelope figures against the baseline")
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "tripwire-bench: memory envelopes within %.1f%% of baseline across %d figures\n", *assertHeapPct, checked)
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "tripwire-bench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "tripwire-bench:", err)
		os.Exit(1)
	}
}
