// Command tripwire-report runs a pilot and regenerates individual tables
// and figures from the paper.
//
// Usage:
//
//	tripwire-report [-scale small|paper] [-seed N] -artifact table1|table2|table3|table4|fig1|fig2|fig3|sec64|all
package main

import (
	"flag"
	"fmt"
	"os"

	"tripwire"
	"tripwire/internal/report"
	"tripwire/internal/sim"
)

func main() {
	scale := flag.String("scale", "small", "study scale: small or paper")
	seed := flag.Int64("seed", 42, "simulation seed")
	artifact := flag.String("artifact", "all", "which artifact to print")
	flag.Parse()

	var cfg tripwire.Config
	switch *scale {
	case "small":
		cfg = tripwire.SmallConfig()
	case "paper":
		cfg = tripwire.DefaultConfig()
	default:
		fmt.Fprintf(os.Stderr, "tripwire-report: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	cfg.Seed = *seed
	study := tripwire.New(tripwire.WithConfig(cfg)).Run()
	p := study.Pilot()

	switch *artifact {
	case "table1":
		fmt.Print(report.RenderTable1(report.Table1(p)))
	case "table2":
		fmt.Print(report.RenderTable2(report.Table2(p)))
	case "table3":
		fmt.Print(report.RenderTable3(report.Table3(p)))
	case "table4":
		fmt.Print(report.RenderTable4(report.Table4(p, tableRanks(p))))
	case "fig1":
		fmt.Print(report.RenderFig1(report.Fig1(p)))
	case "fig2":
		fmt.Print(report.Fig2(p))
	case "fig3":
		fmt.Print(report.RenderFig3(report.Fig3(p)))
	case "sec64":
		fmt.Print(report.RenderSec64(report.Sec64(p)))
	case "all":
		fmt.Print(study.Summary())
	default:
		fmt.Fprintf(os.Stderr, "tripwire-report: unknown artifact %q\n", *artifact)
		os.Exit(2)
	}
}

func tableRanks(p *sim.Pilot) []int {
	var out []int
	for _, r := range []int{1, 1000, 10000, 100000} {
		if r+99 <= p.Cfg.Web.NumSites {
			out = append(out, r)
		}
	}
	if len(out) == 0 {
		out = []int{1}
	}
	return out
}
