// Command tripwire runs the full Tripwire pilot study end to end on the
// virtual July 2014 – February 2017 timeline and prints every table and
// figure of the paper.
//
// Usage:
//
//	tripwire [-scale small|paper] [-seed N] [-workers N] [-timeline-workers N]
//	         [-detections-only] [-metrics-addr HOST:PORT] [-metrics-out FILE]
//	         [-progress] [-checkpoint-dir DIR] [-checkpoint-every N]
//	         [-resume FILE] [-eager-accounts] [-adaptive-align]
//
// The paper scale crawls 33,634 synthetic sites and monitors >100,000 honey
// accounts; small scale runs the same pipeline on a 1,200-site web in a few
// seconds.
//
// Observability: -metrics-addr serves /metrics (Prometheus text),
// /metrics.json and /healthz while the study runs; -metrics-out dumps the
// final registry at exit ("-" for stdout, *.prom for text, anything else
// JSON); -progress streams wave and detection events to stderr. Ctrl-C
// stops the study at the next wave boundary, keeping every completed
// wave's results (and the metrics dump) intact.
//
// Checkpoint/resume: -checkpoint-dir (with -checkpoint-every, default 10)
// writes a resumable snapshot after every Nth completed wave, so an
// interrupted paper-scale run loses at most one checkpoint interval.
// -resume FILE rebuilds the study from a snapshot, deterministically
// replays the completed prefix, verifies it byte-for-byte against the
// snapshot, and continues; the final output is identical to an
// uninterrupted run. -scale and -seed are taken from the snapshot when
// resuming; worker counts and metrics flags still apply.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tripwire"
	"tripwire/internal/obs"
	"tripwire/internal/runlog"
)

func main() {
	scale := flag.String("scale", "small", "study scale: small or paper")
	seed := flag.Int64("seed", 42, "simulation seed")
	detectionsOnly := flag.Bool("detections-only", false, "print only detected compromises")
	saveDir := flag.String("save", "", "write a results directory (summary, dataset, JSON records)")
	workers := flag.Int("workers", 0, "crawl workers per registration wave (0 = GOMAXPROCS); any value yields identical output for a given seed")
	timelineWorkers := flag.Int("timeline-workers", 0, "timeline epoch workers (0 = GOMAXPROCS); any value yields identical output for a given seed")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /metrics.json and /healthz on this address while running")
	metricsOut := flag.String("metrics-out", "", "dump the metrics registry here at exit (\"-\" = stdout, *.prom = Prometheus text, else JSON)")
	progress := flag.Bool("progress", false, "stream wave completions and detections to stderr")
	checkpointDir := flag.String("checkpoint-dir", "", "write resumable snapshots into this directory at wave boundaries")
	checkpointEvery := flag.Int("checkpoint-every", 10, "checkpoint after every Nth completed wave (with -checkpoint-dir)")
	resume := flag.String("resume", "", "resume from this checkpoint file; replays and verifies the completed prefix, then continues")
	eagerAccounts := flag.Bool("eager-accounts", false, "materialize every honey account up front instead of deriving lazily from (seed, rank); results are identical, memory is not")
	adaptiveAlign := flag.Bool("adaptive-align", false, "let the attacker campaign widen its scheduling grain adaptively so timeline workers overlap more stuffing latency; worker-count invariant, but changes event timestamps vs the fixed grain")
	flag.Parse()

	var cfg tripwire.Config
	switch *scale {
	case "small":
		cfg = tripwire.SmallConfig()
	case "paper":
		cfg = tripwire.DefaultConfig()
	default:
		fmt.Fprintf(os.Stderr, "tripwire: unknown scale %q (want small or paper)\n", *scale)
		os.Exit(2)
	}

	opts := []tripwire.Option{
		tripwire.WithWorkers(*workers),
		tripwire.WithTimelineWorkers(*timelineWorkers),
	}
	if *eagerAccounts {
		opts = append(opts, tripwire.WithEagerAccounts(true))
	}
	if *adaptiveAlign {
		opts = append(opts, tripwire.WithAdaptiveAlign(true))
	}
	if *checkpointDir != "" {
		opts = append(opts, tripwire.WithCheckpoint(*checkpointDir, *checkpointEvery))
	}
	var reg *tripwire.Metrics
	if *metricsAddr != "" || *metricsOut != "" {
		reg = tripwire.NewMetrics()
		opts = append(opts, tripwire.WithMetrics(reg))
	}
	var study *tripwire.Study
	if *resume != "" {
		// The snapshot carries the configuration (scale, seed, batches);
		// -scale and -seed are ignored on resume.
		s, err := tripwire.Resume(*resume, opts...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tripwire: %v\n", err)
			os.Exit(1)
		}
		study = s
		cfg = s.Pilot().Cfg
		fmt.Fprintf(os.Stderr, "tripwire: resuming from %s\n", *resume)
	} else {
		study = tripwire.New(append(opts, tripwire.WithConfig(cfg), tripwire.WithSeed(*seed))...)
	}
	if err := study.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "tripwire: %v\n", err)
		os.Exit(1)
	}

	if *metricsAddr != "" {
		bound, shutdown, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tripwire: %v\n", err)
			os.Exit(1)
		}
		defer func() { _ = shutdown() }()
		fmt.Fprintf(os.Stderr, "tripwire: metrics on http://%s/metrics\n", bound)
	}

	if *progress {
		go func() {
			for ev := range study.Events() {
				switch ev.Kind {
				case tripwire.EventWaveDone:
					fmt.Fprintf(os.Stderr, "tripwire: %s  wave done  batch=%q ranks=%d..%d attempts=%d\n",
						ev.At.Format("2006-01-02"), ev.Batch, ev.FromRank, ev.ToRank, ev.Attempts)
				case tripwire.EventDetection:
					fmt.Fprintf(os.Stderr, "tripwire: %s  DETECTED   %s (%d of %d accounts accessed)\n",
						ev.At.Format("2006-01-02"), ev.Detection.Domain,
						ev.Detection.AccountsAccessed, ev.Detection.AccountsRegistered)
				}
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Fprintf(os.Stderr, "tripwire: generating %d-site web and running pilot (seed %d)...\n",
		cfg.Web.NumSites, cfg.Seed)
	start := time.Now()
	runErr := study.RunContext(ctx)
	switch {
	case runErr == nil:
		fmt.Fprintf(os.Stderr, "tripwire: pilot finished in %v\n", time.Since(start))
	case errors.Is(runErr, context.Canceled):
		fmt.Fprintf(os.Stderr, "tripwire: interrupted after %v; results below cover completed waves only\n", time.Since(start))
	default:
		fmt.Fprintf(os.Stderr, "tripwire: %v\n", runErr)
		os.Exit(1)
	}

	if *metricsOut != "" {
		if err := obs.WriteFile(*metricsOut, reg); err != nil {
			fmt.Fprintf(os.Stderr, "tripwire: writing metrics: %v\n", err)
			os.Exit(1)
		}
		if *metricsOut != "-" {
			fmt.Fprintf(os.Stderr, "tripwire: metrics written to %s\n", *metricsOut)
		}
	}

	if !study.IntegrityOK() {
		fmt.Fprintln(os.Stderr, "tripwire: WARNING: integrity alarms fired (unused accounts were accessed)")
	}

	if *saveDir != "" {
		man, err := runlog.Write(*saveDir, study.Pilot(), study.Summary())
		if err != nil {
			fmt.Fprintf(os.Stderr, "tripwire: saving results: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "tripwire: results saved to %s (%d attempts, %d detections)\n",
			*saveDir, man.Attempts, man.Detections)
	}

	if *detectionsOnly {
		for _, d := range study.Detections() {
			fmt.Printf("%-16s rank≈%-6d %-14s %d of %d accounts accessed; %s\n",
				d.Domain, d.Rank, d.Category, d.AccountsAccessed, d.AccountsRegistered,
				study.Classify(d))
		}
	} else {
		fmt.Print(study.Summary())
	}
	if runErr != nil {
		os.Exit(1)
	}
}
