// Command tripwire runs the full Tripwire pilot study end to end on the
// virtual July 2014 – February 2017 timeline and prints every table and
// figure of the paper.
//
// Usage:
//
//	tripwire [-scale small|paper] [-seed N] [-workers N] [-detections-only]
//
// The paper scale crawls 33,634 synthetic sites and monitors >100,000 honey
// accounts; small scale runs the same pipeline on a 1,200-site web in a few
// seconds.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"tripwire"
	"tripwire/internal/runlog"
)

func main() {
	scale := flag.String("scale", "small", "study scale: small or paper")
	seed := flag.Int64("seed", 42, "simulation seed")
	detectionsOnly := flag.Bool("detections-only", false, "print only detected compromises")
	saveDir := flag.String("save", "", "write a results directory (summary, dataset, JSON records)")
	workers := flag.Int("workers", 0, "crawl workers per registration wave (0 = GOMAXPROCS); any value yields identical output for a given seed")
	flag.Parse()

	var cfg tripwire.Config
	switch *scale {
	case "small":
		cfg = tripwire.SmallConfig()
	case "paper":
		cfg = tripwire.DefaultConfig()
	default:
		fmt.Fprintf(os.Stderr, "tripwire: unknown scale %q (want small or paper)\n", *scale)
		os.Exit(2)
	}
	cfg.Seed = *seed
	cfg.CrawlWorkers = *workers

	fmt.Fprintf(os.Stderr, "tripwire: generating %d-site web and running pilot (%s scale, seed %d)...\n",
		cfg.Web.NumSites, *scale, *seed)
	start := time.Now()
	study := tripwire.NewStudy(cfg).Run()
	fmt.Fprintf(os.Stderr, "tripwire: pilot finished in %v\n", time.Since(start))

	if !study.IntegrityOK() {
		fmt.Fprintln(os.Stderr, "tripwire: WARNING: integrity alarms fired (unused accounts were accessed)")
	}

	if *saveDir != "" {
		man, err := runlog.Write(*saveDir, study.Pilot(), study.Summary())
		if err != nil {
			fmt.Fprintf(os.Stderr, "tripwire: saving results: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "tripwire: results saved to %s (%d attempts, %d detections)\n",
			*saveDir, man.Attempts, man.Detections)
	}

	if *detectionsOnly {
		for _, d := range study.Detections() {
			fmt.Printf("%-16s rank≈%-6d %-14s %d of %d accounts accessed; %s\n",
				d.Domain, d.Rank, d.Category, d.AccountsAccessed, d.AccountsRegistered,
				study.Classify(d))
		}
		return
	}
	fmt.Print(study.Summary())
}
