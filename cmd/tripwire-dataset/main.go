// Command tripwire-dataset runs a pilot and emits the anonymized login
// dataset the paper releases (§7.4): one CSV row per login event with the
// account alias, day-rounded timestamp, /24 of the accessing IP, and login
// method.
//
// Usage:
//
//	tripwire-dataset [-scale small|paper] [-seed N] [-o file]
package main

import (
	"flag"
	"fmt"
	"os"

	"tripwire"
	"tripwire/internal/datarelease"
)

func main() {
	scale := flag.String("scale", "small", "study scale: small or paper")
	seed := flag.Int64("seed", 42, "simulation seed")
	out := flag.String("o", "-", "output path ('-' = stdout)")
	flag.Parse()

	var cfg tripwire.Config
	switch *scale {
	case "small":
		cfg = tripwire.SmallConfig()
	case "paper":
		cfg = tripwire.DefaultConfig()
	default:
		fmt.Fprintf(os.Stderr, "tripwire-dataset: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	cfg.Seed = *seed

	study := tripwire.New(tripwire.WithConfig(cfg)).Run()
	records := datarelease.Build(study.Pilot())
	if err := datarelease.Audit(records, study.Pilot()); err != nil {
		fmt.Fprintf(os.Stderr, "tripwire-dataset: anonymization audit failed: %v\n", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tripwire-dataset: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := datarelease.Write(w, records); err != nil {
		fmt.Fprintf(os.Stderr, "tripwire-dataset: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "tripwire-dataset: wrote %d anonymized login records\n", len(records))
}
