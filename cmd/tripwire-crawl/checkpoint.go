package main

import (
	"fmt"

	"tripwire/internal/crawler"
	"tripwire/internal/snapshot"
)

// Crawl checkpoints. A site's crawl result is a pure function of
// (seed, rank), so — unlike the pilot, which must replay — the crawl tool
// resumes by skipping: the checkpoint stores the results of a completed
// rank prefix, and a resumed run loads them and crawls only the remaining
// ranks. The params section pins the inputs that determine the results;
// resuming under different flags is refused rather than silently mixing
// two universes' results.

const (
	crawlParamsSection  = "params"
	crawlResultsSection = "results"
)

// crawlParams are the inputs every per-rank result derives from.
type crawlParams struct {
	Sites int
	From  int
	To    int
	Seed  int64
}

func encodeCrawlCheckpoint(p crawlParams, results []crawler.Result) *snapshot.File {
	e := snapshot.NewEncoder()
	e.Int(int64(p.Sites))
	e.Int(int64(p.From))
	e.Int(int64(p.To))
	e.Int(p.Seed)
	f := snapshot.New()
	f.Add(crawlParamsSection, e.Bytes())

	e = snapshot.NewEncoder()
	e.Uint(uint64(len(results)))
	for _, r := range results {
		e.Int(int64(r.Code))
		e.String(r.Site)
		e.String(r.RegURL)
		e.Bool(r.Exposed)
		e.Int(int64(r.PageLoads))
		e.String(r.Detail)
	}
	f.Add(crawlResultsSection, e.Bytes())
	return f
}

func decodeCrawlCheckpoint(f *snapshot.File) (crawlParams, []crawler.Result, error) {
	pdata, ok := f.Section(crawlParamsSection)
	if !ok {
		return crawlParams{}, nil, fmt.Errorf("%w: no %q section", snapshot.ErrCorrupt, crawlParamsSection)
	}
	d := snapshot.NewDecoder(pdata)
	p := crawlParams{
		Sites: int(d.Int()),
		From:  int(d.Int()),
		To:    int(d.Int()),
		Seed:  d.Int(),
	}
	if err := d.Err(); err != nil {
		return crawlParams{}, nil, fmt.Errorf("params section: %w", err)
	}

	rdata, ok := f.Section(crawlResultsSection)
	if !ok {
		return crawlParams{}, nil, fmt.Errorf("%w: no %q section", snapshot.ErrCorrupt, crawlResultsSection)
	}
	d = snapshot.NewDecoder(rdata)
	var results []crawler.Result
	if n := d.Count(6); n > 0 {
		results = make([]crawler.Result, n)
		for i := range results {
			r := &results[i]
			r.Code = crawler.Code(d.Int())
			r.Site = d.String()
			r.RegURL = d.String()
			r.Exposed = d.Bool()
			r.PageLoads = int(d.Int())
			r.Detail = d.String()
		}
	}
	if err := d.Err(); err != nil {
		return crawlParams{}, nil, fmt.Errorf("results section: %w", err)
	}
	if d.Remaining() != 0 {
		return crawlParams{}, nil, fmt.Errorf("results section: %w: %d trailing bytes", snapshot.ErrCorrupt, d.Remaining())
	}
	return p, results, nil
}

func readCrawlCheckpoint(path string) (crawlParams, []crawler.Result, error) {
	f, err := snapshot.ReadFile(path)
	if err != nil {
		return crawlParams{}, nil, err
	}
	return decodeCrawlCheckpoint(f)
}
