// Command tripwire-crawl exercises the registration crawler alone: it
// generates the synthetic web, crawls a rank range, and reports the
// termination code for every site plus the Figure-1 distribution.
//
// Crawls are sharded across -workers goroutines. Output is identical for a
// given seed regardless of worker count: identities are minted serially in
// rank order, every per-site random draw derives from (seed, rank), and
// results are reported in rank order. With -timeline-workers N the crawl
// runs through the epoch-parallel timeline engine instead: every rank
// becomes a domain-keyed event in one epoch, executed by N workers — the
// same engine that parallelizes the pilot's attacker timeline, and the
// output is byte-identical to the sharded path.
//
// Usage:
//
//	tripwire-crawl [-sites N] [-from R] [-to R] [-seed N] [-workers N]
//	               [-timeline-workers N] [-v]
//	               [-cpuprofile FILE] [-memprofile FILE]
//	               [-mutexprofile FILE] [-blockprofile FILE]
//	               [-metrics-addr HOST:PORT] [-metrics-out FILE]
//	               [-checkpoint-dir DIR] [-resume FILE]
//
// Checkpoint/resume: with -checkpoint-dir the crawl runs in rank chunks
// and rewrites DIR/crawl-checkpoint.twsnap after each completed chunk.
// -resume FILE skips the checkpointed prefix outright — per-rank results
// are pure functions of (seed, rank), so no replay is needed — and crawls
// only the remaining ranks; the flags must match the checkpointed run.
//
// The profile flags capture the crawl hot path for pprof: -cpuprofile
// records the whole crawl, -memprofile writes a post-crawl heap profile,
// and -mutexprofile / -blockprofile record lock contention and blocking
// during the crawl — the substrate-scaling diagnostics for high worker
// counts.
// The metrics flags attach the observability registry: -metrics-addr
// serves /metrics live during the crawl, -metrics-out dumps crawler and
// webgen telemetry (attempts, termination codes, classify- and
// render-cache hit rates) at exit.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"tripwire/internal/browser"
	"tripwire/internal/captcha"
	"tripwire/internal/crawler"
	"tripwire/internal/identity"
	"tripwire/internal/obs"
	"tripwire/internal/simclock"
	"tripwire/internal/snapshot"
	"tripwire/internal/webgen"
	"tripwire/internal/xrand"
)

func main() {
	numSites := flag.Int("sites", 2000, "number of sites in the generated web")
	from := flag.Int("from", 1, "first rank to crawl")
	to := flag.Int("to", 200, "last rank to crawl")
	seed := flag.Int64("seed", 1, "generation seed")
	workers := flag.Int("workers", 0, "concurrent crawl workers (0 = GOMAXPROCS)")
	timelineWorkers := flag.Int("timeline-workers", 0, "crawl via the epoch-parallel timeline engine with this many workers (0 = sharded crawl via -workers); output is identical either way")
	verbose := flag.Bool("v", false, "print one line per site")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the crawl to this file")
	memprofile := flag.String("memprofile", "", "write a post-crawl heap profile to this file")
	mutexprofile := flag.String("mutexprofile", "", "write a post-crawl mutex-contention profile to this file")
	blockprofile := flag.String("blockprofile", "", "write a post-crawl goroutine-blocking profile to this file")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /metrics.json and /healthz on this address while crawling")
	metricsOut := flag.String("metrics-out", "", "dump the metrics registry here at exit (\"-\" = stdout, *.prom = Prometheus text, else JSON)")
	checkpointDir := flag.String("checkpoint-dir", "", "write crawl-checkpoint.twsnap here after every completed chunk of ranks")
	resume := flag.String("resume", "", "resume a crawl from this checkpoint; -sites/-from/-to/-seed must match the checkpointed run")
	flag.Parse()

	if *from < 1 || *to < *from {
		fmt.Fprintln(os.Stderr, "tripwire-crawl: invalid rank range")
		os.Exit(2)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tripwire-crawl:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "tripwire-crawl:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *mutexprofile != "" {
		runtime.SetMutexProfileFraction(1)
	}
	if *blockprofile != "" {
		runtime.SetBlockProfileRate(1)
	}
	nw := *workers
	if nw <= 0 {
		nw = runtime.GOMAXPROCS(0)
	}

	var reg *obs.Registry
	if *metricsAddr != "" || *metricsOut != "" {
		reg = obs.New()
	}

	webCfg := webgen.DefaultConfig()
	webCfg.NumSites = *numSites
	webCfg.Seed = *seed
	universe := webgen.Generate(webCfg)

	gen := identity.NewGenerator("bigmail.test", *seed+1)
	solver := captcha.NewService(0.15, 0.25, *seed+2)
	ccfg := crawler.DefaultConfig()
	ccfg.Seed = *seed + 3
	c := crawler.New(ccfg, solver)

	if reg != nil {
		universe.Observe(reg)
		c.Metrics = crawler.NewMetrics(reg)
	}
	if *metricsAddr != "" {
		bound, shutdown, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tripwire-crawl:", err)
			os.Exit(1)
		}
		defer func() { _ = shutdown() }()
		fmt.Fprintf(os.Stderr, "tripwire-crawl: metrics on http://%s/metrics\n", bound)
	}

	last := *to
	if last > *numSites {
		last = *numSites
	}
	n := last - *from + 1
	if n < 0 {
		n = 0
	}

	// Identities are drawn from one sequential generator stream, so mint
	// them before fanning out: slot i always gets the same identity.
	ids := make([]*identity.Identity, n)
	for i := range ids {
		ids[i] = gen.New(identity.Hard)
	}

	results := make([]crawler.Result, n)
	crawlRank := func(i int) {
		rank := *from + i
		site, _ := universe.SiteByRank(rank)
		b := browser.New(browser.WithTransport(&browser.HandlerTransport{Handler: universe}))
		env := &crawler.Env{
			Rng:    xrand.New(xrand.Mix(*seed, int64(rank), 1)),
			Solver: solver.Derive(xrand.Mix(*seed, int64(rank), 2)),
			Sleep:  func(time.Duration) {},
		}
		results[i] = c.RegisterWith(env, b, "http://"+site.Domain+"/", ids[i])
	}
	// runRange crawls slots [lo, hi) with the selected engine. Both paths
	// yield byte-identical results: each slot is a pure function of
	// (seed, rank), so neither engine choice nor chunking is observable.
	runRange := func(lo, hi int) {
		if hi <= lo {
			return
		}
		if *timelineWorkers != 0 {
			// Epoch-engine path: all ranks share one timestamp, each keyed
			// by its domain, so the engine's conflict partitioning spreads
			// the crawl over the workers.
			nw = *timelineWorkers
			sched := simclock.NewScheduler(simclock.New(time.Date(2014, 7, 1, 0, 0, 0, 0, time.UTC)))
			at := sched.Clock().Now().Add(time.Hour)
			for i := lo; i < hi; i++ {
				i := i
				site, _ := universe.SiteByRank(*from + i)
				sched.AtKeyed(at, simclock.KeyFor(site.Domain), "crawl "+site.Domain, func(*simclock.Exec) {
					crawlRank(i)
				})
			}
			ep := &simclock.Epochs{Sched: sched, Workers: nw}
			ep.RunEpoch()
			ep.Close()
			return
		}
		var wg sync.WaitGroup
		span := hi - lo
		for w := 0; w < nw && w < span; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := lo + w; i < hi; i += nw {
					crawlRank(i)
				}
			}(w)
		}
		wg.Wait()
	}

	// Checkpoint/resume. Results are pure per rank, so resume skips the
	// checkpointed prefix outright instead of replaying it; the params
	// section refuses a resume under different flags.
	params := crawlParams{Sites: *numSites, From: *from, To: last, Seed: *seed}
	done := 0
	if *resume != "" {
		p, prev, err := readCrawlCheckpoint(*resume)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tripwire-crawl:", err)
			os.Exit(1)
		}
		if p != params {
			fmt.Fprintf(os.Stderr, "tripwire-crawl: checkpoint was taken with -sites %d -from %d -to %d -seed %d; refusing to mix\n",
				p.Sites, p.From, p.To, p.Seed)
			os.Exit(2)
		}
		done = copy(results, prev)
		fmt.Fprintf(os.Stderr, "tripwire-crawl: resumed %d of %d ranks from %s\n", done, n, *resume)
	}

	start := time.Now()
	if *checkpointDir != "" || *resume != "" {
		// Chunked execution: a checkpoint lands after every completed chunk,
		// holding the results of the finished prefix.
		const chunk = 256
		ckptPath := ""
		if *checkpointDir != "" {
			if err := os.MkdirAll(*checkpointDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "tripwire-crawl:", err)
				os.Exit(1)
			}
			ckptPath = filepath.Join(*checkpointDir, "crawl-checkpoint.twsnap")
		}
		for lo := done; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			runRange(lo, hi)
			if ckptPath != "" {
				if err := snapshot.WriteFile(ckptPath, encodeCrawlCheckpoint(params, results[:hi])); err != nil {
					fmt.Fprintln(os.Stderr, "tripwire-crawl: checkpoint:", err)
					os.Exit(1)
				}
			}
		}
	} else {
		runRange(0, n)
	}
	elapsed := time.Since(start)

	counts := make(map[crawler.Code]int)
	exposed := 0
	for i, res := range results {
		rank := *from + i
		counts[res.Code]++
		if res.Exposed {
			exposed++
		}
		if *verbose {
			site, _ := universe.SiteByRank(rank)
			fmt.Printf("%-16s rank=%-6d lang=%-3s %-30s %s\n",
				site.Domain, rank, site.Language, res.Code, res.Detail)
		}
	}

	total := 0
	for _, n := range counts {
		total += n
	}
	fmt.Printf("\nCrawled %d sites (ranks %d..%d) with %d workers in %v; %d identities exposed\n",
		total, *from, last, nw, elapsed.Round(time.Millisecond), exposed)
	for _, code := range []crawler.Code{
		crawler.CodeNoRegistration, crawler.CodeFieldsMissing,
		crawler.CodeSubmissionFailed, crawler.CodeOKSubmission,
		crawler.CodeSystemError,
	} {
		fmt.Printf("  %-30s %6d  %5.1f%%\n", code, counts[code], 100*float64(counts[code])/float64(total))
	}

	if *metricsOut != "" {
		if err := obs.WriteFile(*metricsOut, reg); err != nil {
			fmt.Fprintln(os.Stderr, "tripwire-crawl: writing metrics:", err)
			os.Exit(1)
		}
		if *metricsOut != "-" {
			fmt.Fprintf(os.Stderr, "tripwire-crawl: metrics written to %s\n", *metricsOut)
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tripwire-crawl:", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile shows retained memory
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "tripwire-crawl:", err)
			os.Exit(1)
		}
	}
	writeProfile(*mutexprofile, "mutex")
	writeProfile(*blockprofile, "block")
}

// writeProfile dumps a named runtime profile ("mutex", "block") at exit.
func writeProfile(path, name string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tripwire-crawl:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		fmt.Fprintln(os.Stderr, "tripwire-crawl:", err)
		os.Exit(1)
	}
}
