// Command tripwire-crawl exercises the registration crawler alone: it
// generates the synthetic web, crawls a rank range, and reports the
// termination code for every site plus the Figure-1 distribution.
//
// Usage:
//
//	tripwire-crawl [-sites N] [-from R] [-to R] [-seed N] [-v]
package main

import (
	"flag"
	"fmt"
	"os"

	"tripwire/internal/browser"
	"tripwire/internal/captcha"
	"tripwire/internal/crawler"
	"tripwire/internal/identity"
	"tripwire/internal/webgen"
)

func main() {
	numSites := flag.Int("sites", 2000, "number of sites in the generated web")
	from := flag.Int("from", 1, "first rank to crawl")
	to := flag.Int("to", 200, "last rank to crawl")
	seed := flag.Int64("seed", 1, "generation seed")
	verbose := flag.Bool("v", false, "print one line per site")
	flag.Parse()

	if *from < 1 || *to < *from {
		fmt.Fprintln(os.Stderr, "tripwire-crawl: invalid rank range")
		os.Exit(2)
	}

	webCfg := webgen.DefaultConfig()
	webCfg.NumSites = *numSites
	webCfg.Seed = *seed
	universe := webgen.Generate(webCfg)

	gen := identity.NewGenerator("bigmail.test", *seed+1)
	solver := captcha.NewService(0.15, 0.25, *seed+2)
	ccfg := crawler.DefaultConfig()
	ccfg.Seed = *seed + 3
	c := crawler.New(ccfg, solver)

	counts := make(map[crawler.Code]int)
	exposed := 0
	for rank := *from; rank <= *to && rank <= *numSites; rank++ {
		site, _ := universe.SiteByRank(rank)
		b := browser.New(browser.WithTransport(&browser.HandlerTransport{Handler: universe}))
		id := gen.New(identity.Hard)
		res := c.Register(b, "http://"+site.Domain+"/", id)
		counts[res.Code]++
		if res.Exposed {
			exposed++
		}
		if *verbose {
			fmt.Printf("%-16s rank=%-6d lang=%-3s %-30s %s\n",
				site.Domain, rank, site.Language, res.Code, res.Detail)
		}
	}

	total := 0
	for _, n := range counts {
		total += n
	}
	fmt.Printf("\nCrawled %d sites (ranks %d..%d); %d identities exposed\n", total, *from, *to, exposed)
	for _, code := range []crawler.Code{
		crawler.CodeNoRegistration, crawler.CodeFieldsMissing,
		crawler.CodeSubmissionFailed, crawler.CodeOKSubmission,
		crawler.CodeSystemError,
	} {
		fmt.Printf("  %-30s %6d  %5.1f%%\n", code, counts[code], 100*float64(counts[code])/float64(total))
	}
}
