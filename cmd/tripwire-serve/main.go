// Command tripwire-serve is the long-running study daemon: a registry of
// concurrent studies behind an HTTP control plane, with SSE event
// streaming and HMAC-signed webhook delivery.
//
// Configuration is environment-only (twelve-factor style; there are no
// flags):
//
//	TRIPWIRE_SERVE_ADDR        listen address       (default 127.0.0.1:8080)
//	TRIPWIRE_SERVE_DATA_DIR    study state root     (default <tmp>/tripwire-serve)
//	TRIPWIRE_SERVE_MAX_ACTIVE  concurrent studies   (default 2)
//	TRIPWIRE_SERVE_RATE        per-IP requests/sec  (default 20; 0 disables)
//	TRIPWIRE_SERVE_BURST       per-IP burst         (default 40)
//
// Webhook endpoints are declared the same way, one rule per <NAME>:
//
//	TRIPWIRE_HOOK_<NAME>_URL     destination (required per rule)
//	TRIPWIRE_HOOK_<NAME>_SECRET  HMAC-SHA256 payload signing key
//	TRIPWIRE_HOOK_<NAME>_EVENTS  comma-separated kinds ("*" or empty = all)
//
// The API: POST /studies submits, GET /studies/{id} reports, POST
// /studies/{id}/pause|resume|cancel drives the lifecycle, GET
// /studies/{id}/events streams SSE with Last-Event-ID replay, GET /hooks
// shows delivery stats, and /metrics, /metrics.json, /healthz serve
// observability. See DESIGN.md "Control plane".
package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"tripwire/internal/hook"
	"tripwire/internal/obs"
	"tripwire/internal/registry"
)

// config is everything the environment decides.
type config struct {
	addr      string
	dataDir   string
	maxActive int
	rate      float64
	burst     int
	rules     []hook.Rule
}

// parseConfig reads the TRIPWIRE_SERVE_* and TRIPWIRE_HOOK_* variables
// out of an os.Environ-shaped list.
func parseConfig(environ []string) (config, error) {
	cfg := config{
		addr:  "127.0.0.1:8080",
		rate:  20,
		burst: 40,
	}
	get := func(key string) (string, bool) {
		for _, kv := range environ {
			if len(kv) > len(key) && kv[:len(key)] == key && kv[len(key)] == '=' {
				return kv[len(key)+1:], true
			}
		}
		return "", false
	}
	if v, ok := get("TRIPWIRE_SERVE_ADDR"); ok {
		cfg.addr = v
	}
	if v, ok := get("TRIPWIRE_SERVE_DATA_DIR"); ok {
		cfg.dataDir = v
	}
	if v, ok := get("TRIPWIRE_SERVE_MAX_ACTIVE"); ok {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return cfg, fmt.Errorf("TRIPWIRE_SERVE_MAX_ACTIVE=%q: want a positive integer", v)
		}
		cfg.maxActive = n
	}
	if v, ok := get("TRIPWIRE_SERVE_RATE"); ok {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 {
			return cfg, fmt.Errorf("TRIPWIRE_SERVE_RATE=%q: want a non-negative number", v)
		}
		cfg.rate = f
	}
	if v, ok := get("TRIPWIRE_SERVE_BURST"); ok {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return cfg, fmt.Errorf("TRIPWIRE_SERVE_BURST=%q: want a positive integer", v)
		}
		cfg.burst = n
	}
	rules, err := hook.RulesFromEnv(environ)
	if err != nil {
		return cfg, err
	}
	cfg.rules = rules
	return cfg, nil
}

// server is the wired daemon; tests build one on a random port and drive
// it over HTTP.
type server struct {
	reg     *registry.Registry
	hooks   *hook.Dispatcher
	metrics *obs.Registry
	http    *http.Server
	ln      net.Listener
}

// newServer binds cfg.addr and wires registry, webhook dispatcher, rate
// limiter, and metrics. The listener is live when newServer returns
// (Addr is final); Serve starts accepting.
func newServer(cfg config) (*server, error) {
	metrics := obs.New()
	requests := metrics.Counter("tripwire_serve_http_requests", "control plane HTTP requests")
	outcomes := metrics.CounterVec("tripwire_serve_hook_outcomes",
		"webhook delivery outcomes", "outcome", "delivered", "retry", "failed", "dropped")
	hooks := hook.NewDispatcher(cfg.rules, hook.Options{
		Observe: func(outcome string) { outcomes.With(outcome).Inc() },
	})
	reg, err := registry.New(registry.Options{
		DataDir:   cfg.dataDir,
		MaxActive: cfg.maxActive,
		Metrics:   metrics,
		Hooks:     hooks,
	})
	if err != nil {
		hooks.Close()
		return nil, err
	}
	var limiter *registry.RateLimiter
	if cfg.rate > 0 {
		limiter = registry.NewRateLimiter(cfg.rate, cfg.burst)
	}
	handler := registry.Handler(reg, limiter)
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		reg.Close()
		hooks.Close()
		return nil, fmt.Errorf("listen %s: %w", cfg.addr, err)
	}
	return &server{
		reg:     reg,
		hooks:   hooks,
		metrics: metrics,
		ln:      ln,
		http: &http.Server{
			Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				requests.Inc()
				handler.ServeHTTP(w, r)
			}),
		},
	}, nil
}

// Addr returns the bound listen address.
func (s *server) Addr() string { return s.ln.Addr().String() }

// Serve blocks accepting connections until Shutdown.
func (s *server) Serve() error {
	err := s.http.Serve(s.ln)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// Shutdown drains HTTP, cancels live studies, and stops the webhook
// dispatcher, in that order — the registry's cancellation events are the
// last chance for webhooks to fire.
func (s *server) Shutdown(ctx context.Context) error {
	err := s.http.Shutdown(ctx)
	s.reg.Close()
	s.hooks.Close()
	return err
}

func main() {
	cfg, err := parseConfig(os.Environ())
	if err != nil {
		fmt.Fprintln(os.Stderr, "tripwire-serve:", err)
		os.Exit(2)
	}
	srv, err := newServer(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tripwire-serve:", err)
		os.Exit(1)
	}
	fmt.Printf("tripwire-serve: listening on %s (%d hook rules)\n", srv.Addr(), len(cfg.rules))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	select {
	case <-ctx.Done():
		fmt.Println("tripwire-serve: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			fmt.Fprintln(os.Stderr, "tripwire-serve: shutdown:", err)
			os.Exit(1)
		}
	case err := <-done:
		if err != nil {
			fmt.Fprintln(os.Stderr, "tripwire-serve:", err)
			os.Exit(1)
		}
	}
}
