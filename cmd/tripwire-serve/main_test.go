package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tripwire/internal/hook"
)

func TestParseConfig(t *testing.T) {
	cfg, err := parseConfig([]string{
		"TRIPWIRE_SERVE_ADDR=127.0.0.1:0",
		"TRIPWIRE_SERVE_MAX_ACTIVE=3",
		"TRIPWIRE_SERVE_RATE=0",
		"TRIPWIRE_HOOK_LAB_URL=http://lab.example/x",
		"TRIPWIRE_HOOK_LAB_SECRET=k",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.addr != "127.0.0.1:0" || cfg.maxActive != 3 || cfg.rate != 0 || len(cfg.rules) != 1 {
		t.Fatalf("cfg = %+v", cfg)
	}
	for _, bad := range [][]string{
		{"TRIPWIRE_SERVE_MAX_ACTIVE=zero"},
		{"TRIPWIRE_SERVE_RATE=-1"},
		{"TRIPWIRE_SERVE_BURST=0"},
		{"TRIPWIRE_HOOK_X_SECRET=orphaned"},
	} {
		if _, err := parseConfig(bad); err == nil {
			t.Errorf("parseConfig(%v) accepted", bad)
		}
	}
}

// TestServeSmoke is the CI serve gate: boot the daemon on a random port,
// submit a demo study, pause and resume it over HTTP, and require one
// SSE detection event and one HMAC-verified webhook delivery before the
// study completes.
func TestServeSmoke(t *testing.T) {
	const secret = "smoke-secret"
	type delivery struct {
		kind string
		body []byte
		sig  string
	}
	deliveries := make(chan delivery, 64)
	sink := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		deliveries <- delivery{
			kind: r.Header.Get("X-Tripwire-Event"),
			body: body,
			sig:  r.Header.Get("X-Tripwire-Signature"),
		}
	}))
	defer sink.Close()

	cfg, err := parseConfig([]string{
		"TRIPWIRE_SERVE_ADDR=127.0.0.1:0",
		"TRIPWIRE_SERVE_DATA_DIR=" + t.TempDir(),
		"TRIPWIRE_SERVE_RATE=0", // the test hammers the API; no throttling
		"TRIPWIRE_HOOK_SMOKE_URL=" + sink.URL,
		"TRIPWIRE_HOOK_SMOKE_SECRET=" + secret,
		"TRIPWIRE_HOOK_SMOKE_EVENTS=detection,study.done",
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve() }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	base := "http://" + srv.Addr()

	post := func(path string, body []byte) (*http.Response, map[string]json.RawMessage) {
		t.Helper()
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]json.RawMessage
		_ = json.NewDecoder(resp.Body).Decode(&m)
		return resp, m
	}

	resp, created := post("/studies", []byte(`{"scale":"demo","label":"smoke"}`))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /studies = %d (%v)", resp.StatusCode, created)
	}
	var id string
	_ = json.Unmarshal(created["id"], &id)
	if id == "" {
		t.Fatalf("no id in %v", created)
	}

	// SSE: follow the stream live; pause after the first wave, resume, and
	// keep reading the same connection's replacement until done.
	sse, err := http.Get(base + "/studies/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sse.Body.Close()
	if ct := sse.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE Content-Type = %q", ct)
	}

	var sawDetection, paused bool
	scanner := bufio.NewScanner(sse.Body)
	var kind string
	deadline := time.After(120 * time.Second)
	events := make(chan string, 256)
	go func() {
		defer close(events)
		for scanner.Scan() {
			line := scanner.Text()
			if strings.HasPrefix(line, "event: ") {
				events <- strings.TrimPrefix(line, "event: ")
			}
		}
	}()
stream:
	for {
		select {
		case k, ok := <-events:
			if !ok {
				break stream
			}
			kind = k
			if kind == "detection" {
				sawDetection = true
			}
			if kind == "wave" && !paused {
				paused = true
				if resp, info := post("/studies/"+id+"/pause", nil); resp.StatusCode != http.StatusOK {
					t.Fatalf("pause = %d (%v)", resp.StatusCode, info)
				}
				if resp, info := post("/studies/"+id+"/resume", nil); resp.StatusCode != http.StatusOK {
					t.Fatalf("resume = %d (%v)", resp.StatusCode, info)
				}
			}
			if kind == "study.done" {
				break stream
			}
		case <-deadline:
			t.Fatalf("study did not finish (last event %q, paused=%v)", kind, paused)
		}
	}
	if !paused {
		t.Fatal("never saw a wave event to pause at")
	}
	if !sawDetection {
		t.Fatal("no SSE detection event before completion")
	}

	// Final status over HTTP.
	resp2, err := http.Get(base + "/studies/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var info struct {
		State  string `json:"state"`
		Status struct {
			Phase      string `json:"phase"`
			Detections int    `json:"detections"`
		} `json:"status"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if info.State != "done" || info.Status.Phase != "done" || info.Status.Detections == 0 {
		t.Fatalf("final info = %+v", info)
	}

	// A signed webhook delivery must have arrived (the sink only gets
	// detection and study.done kinds, both emitted by now).
	select {
	case d := <-deliveries:
		if d.kind != "detection" && d.kind != "study.done" {
			t.Fatalf("unexpected webhook kind %q", d.kind)
		}
		if !hook.Verify(secret, d.body, d.sig) {
			t.Fatalf("webhook signature %q does not verify", d.sig)
		}
		var ev struct {
			Study string `json:"study"`
			Kind  string `json:"kind"`
		}
		if err := json.Unmarshal(d.body, &ev); err != nil || ev.Study != id || ev.Kind != d.kind {
			t.Fatalf("webhook payload %s (err %v)", d.body, err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("no webhook delivery arrived")
	}

	// Delivery stats visible on the control plane.
	resp3, err := http.Get(base + "/hooks")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]hook.EndpointStats
	if err := json.NewDecoder(resp3.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if stats["SMOKE"].Delivered == 0 {
		t.Fatalf("hook stats = %+v", stats)
	}

	// Metrics endpoint carries the serve counters.
	resp4, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp4.Body)
	resp4.Body.Close()
	for _, name := range []string{"tripwire_serve_http_requests", "tripwire_serve_studies_submitted", "tripwire_serve_events_published", "tripwire_serve_hook_outcomes"} {
		if !bytes.Contains(prom, []byte(name)) {
			t.Fatalf("/metrics missing %s:\n%s", name, prom)
		}
	}
}

// TestServeRateLimit: an aggressive client gets 429 while /healthz stays
// exempt.
func TestServeRateLimit(t *testing.T) {
	cfg, err := parseConfig([]string{
		"TRIPWIRE_SERVE_ADDR=127.0.0.1:0",
		"TRIPWIRE_SERVE_DATA_DIR=" + t.TempDir(),
		"TRIPWIRE_SERVE_RATE=1",
		"TRIPWIRE_SERVE_BURST=2",
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve() }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	base := "http://" + srv.Addr()

	throttled := false
	for i := 0; i < 10; i++ {
		resp, err := http.Get(base + "/studies")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			throttled = true
			break
		}
	}
	if !throttled {
		t.Fatal("burst of 10 requests against rate=1 burst=2 never throttled")
	}
	for i := 0; i < 5; i++ {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz throttled: %d", resp.StatusCode)
		}
	}
}
