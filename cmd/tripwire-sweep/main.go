// Command tripwire-sweep runs the pilot across many seeds and reports the
// distribution of headline outcomes — demonstrating that the reproduction's
// shapes (detections, validity rates, funnel proportions) are properties of
// the system, not of one lucky random stream.
//
// Seeds run on a worker pool bounded by -parallel; per-seed progress
// streams to stderr as each study finishes, while the stdout summary
// aggregates in seed order and is byte-identical at any parallelism. The
// sweep exits non-zero if any seed's study carries an error or fires an
// integrity alarm.
//
// The same binary also runs the sweep distributed across machines:
//
//   - `tripwire-sweep -listen :9091` starts a coordinator that serves the
//     seed tasks over HTTP (internal/distsweep) instead of running them.
//     It prints the identical summary once every seed's result is in.
//   - `tripwire-sweep -join http://host:9091` starts a worker that leases
//     seeds from the coordinator, runs each study locally, and streams the
//     results back. The sweep's shape (-n, -scale, lease TTL) comes from
//     the coordinator's handshake, so workers need no matching flags.
//
// When -secret (or TRIPWIRE_SWEEP_SECRET) is set, every mutating control-
// plane request is HMAC-signed; coordinator and workers must agree.
//
// Usage:
//
//	tripwire-sweep [-n seeds] [-scale small|paper] [-parallel N]
//	tripwire-sweep -listen addr [-n seeds] [-scale ...] [-lease-ttl d] [-secret s] [-rate r]
//	tripwire-sweep -join url [-name worker] [-secret s]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"tripwire"
	"tripwire/internal/distsweep"
	"tripwire/internal/obs"
	"tripwire/internal/sweep"
)

// configFor builds the per-seed study config for a scale label — the one
// function local sweeps, the coordinator, and every joined worker must
// share for the outputs to be byte-identical.
func configFor(scale string) (func(seed int64) tripwire.Config, error) {
	if scale != "small" && scale != "paper" {
		return nil, fmt.Errorf("unknown scale %q (want small or paper)", scale)
	}
	return func(seed int64) tripwire.Config {
		var cfg tripwire.Config
		if scale == "paper" {
			cfg = tripwire.DefaultConfig()
		} else {
			cfg = tripwire.SmallConfig()
		}
		cfg.Seed = seed * 101
		return cfg
	}, nil
}

func main() {
	n := flag.Int("n", 5, "number of seeds to run")
	scale := flag.String("scale", "small", "study scale: small or paper")
	parallel := flag.Int("parallel", 1, "seeds to run concurrently (results are identical at any value)")
	listen := flag.String("listen", "", "coordinator mode: serve seed tasks to workers on this address instead of running them")
	join := flag.String("join", "", "worker mode: lease and run seed tasks from the coordinator at this base URL")
	name := flag.String("name", "", "worker name reported to the coordinator (default host.pid)")
	leaseTTL := flag.Duration("lease-ttl", 30*time.Second, "coordinator mode: lease deadline; an unrenewed seed is re-issued after this")
	secret := flag.String("secret", os.Getenv("TRIPWIRE_SWEEP_SECRET"), "HMAC secret for control-plane requests (default $TRIPWIRE_SWEEP_SECRET)")
	rate := flag.Float64("rate", 0, "coordinator mode: per-IP request rate limit (requests/s, 0 = off)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "tripwire-sweep:", err)
		os.Exit(1)
	}
	if *listen != "" && *join != "" {
		fmt.Fprintln(os.Stderr, "tripwire-sweep: -listen and -join are mutually exclusive")
		os.Exit(2)
	}

	switch {
	case *join != "":
		if err := runWorker(*join, *name, *secret); err != nil {
			fail(err)
		}
	case *listen != "":
		out, err := runCoordinator(*listen, *n, *scale, *leaseTTL, *secret, *rate)
		if err != nil {
			fail(err)
		}
		fmt.Print(out.Render(*scale))
		if err := out.Failed(); err != nil {
			fail(err)
		}
	default:
		cf, err := configFor(*scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tripwire-sweep:", err)
			os.Exit(2)
		}
		out := sweep.Run(sweep.Options{
			N:         *n,
			Parallel:  *parallel,
			ConfigFor: cf,
			Progress:  os.Stderr,
		})
		fmt.Print(out.Render(*scale))
		if err := out.Failed(); err != nil {
			fail(err)
		}
	}
}

// runCoordinator serves the sweep's task set over HTTP and blocks until
// every seed's result has been accepted, then returns the aggregate —
// the same *sweep.Outcome a local Run would have produced.
func runCoordinator(addr string, n int, scale string, leaseTTL time.Duration, secret string, rate float64) (*sweep.Outcome, error) {
	if _, err := configFor(scale); err != nil {
		return nil, err
	}
	coord, err := distsweep.NewCoordinator(distsweep.Options{
		N:        n,
		Scale:    scale,
		LeaseTTL: leaseTTL,
		Secret:   secret,
		Rate:     rate,
		Progress: os.Stderr,
		Metrics:  obs.New(),
	})
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Addr: addr, Handler: distsweep.Handler(coord)}
	errc := make(chan error, 1)
	go func() {
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	fmt.Fprintf(os.Stderr, "tripwire-sweep: coordinating %d seeds (scale %s) on %s; workers join with -join\n", n, scale, addr)
	select {
	case <-coord.Done():
	case err := <-errc:
		return nil, err
	}
	// Grace period: workers learn the sweep is over from a 410 on their
	// next lease poll, so keep serving briefly before shutting down —
	// otherwise they see a dead socket and exit with an error.
	time.Sleep(time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
	return coord.Outcome(), nil
}

// runWorker joins a coordinator, building the per-seed config locally
// from the scale named in the handshake, and runs leased seeds until the
// sweep completes.
func runWorker(baseURL, name, secret string) error {
	client := &distsweep.Client{BaseURL: baseURL, Secret: secret}
	spec, err := client.Spec()
	if err != nil {
		return fmt.Errorf("joining %s: %w", baseURL, err)
	}
	cf, err := configFor(spec.Scale)
	if err != nil {
		return fmt.Errorf("coordinator at %s announced %w", baseURL, err)
	}
	if name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		name = fmt.Sprintf("%s.%d", host, os.Getpid())
	}
	fmt.Fprintf(os.Stderr, "tripwire-sweep: %s joined %s: %d seeds at scale %s\n", name, baseURL, spec.N, spec.Scale)
	w := &distsweep.Worker{
		Client:    client,
		Name:      name,
		ConfigFor: cf,
		OnLease: func(idx int) {
			fmt.Fprintf(os.Stderr, "tripwire-sweep: %s leased seed %d\n", name, idx)
		},
	}
	return w.Run(context.Background())
}
