// Command tripwire-sweep runs the pilot across many seeds and reports the
// distribution of headline outcomes — demonstrating that the reproduction's
// shapes (detections, validity rates, funnel proportions) are properties of
// the system, not of one lucky random stream.
//
// Usage:
//
//	tripwire-sweep [-n seeds] [-scale small|paper]
package main

import (
	"flag"
	"fmt"
	"os"

	"tripwire"
	"tripwire/internal/core"
	"tripwire/internal/report"
	"tripwire/internal/stats"
)

func main() {
	n := flag.Int("n", 5, "number of seeds to run")
	scale := flag.String("scale", "small", "study scale: small or paper")
	flag.Parse()

	var (
		detections   []float64
		hardAccessed []float64
		validRate    []float64
		eligSuccess  []float64
		alarms       []float64
	)
	for seed := int64(1); seed <= int64(*n); seed++ {
		var cfg tripwire.Config
		switch *scale {
		case "small":
			cfg = tripwire.SmallConfig()
		case "paper":
			cfg = tripwire.DefaultConfig()
		default:
			fmt.Fprintf(os.Stderr, "tripwire-sweep: unknown scale %q\n", *scale)
			os.Exit(2)
		}
		cfg.Seed = seed * 101
		study := tripwire.NewStudy(cfg).Run()
		p := study.Pilot()

		dets := study.Detections()
		detections = append(detections, float64(len(dets)))
		hard := 0
		for _, d := range dets {
			if study.Classify(d) == core.BreachPlaintext {
				hard++
			}
		}
		hardAccessed = append(hardAccessed, float64(hard))

		rows := report.Table1(p)
		att, valid := 0, 0
		for _, r := range rows {
			att += r.AttHard + r.AttEasy
			valid += r.ValidHard + r.ValidEasy
		}
		if att > 0 {
			validRate = append(validRate, 100*float64(valid)/float64(att))
		}
		f := report.Fig3(p)
		eligSuccess = append(eligSuccess, 100*f.SuccessOnElig)
		alarms = append(alarms, float64(len(p.Monitor.Alarms())))

		fmt.Fprintf(os.Stderr, "seed %-6d detections=%d hard=%d valid=%.0f%% eligOK=%.0f%%\n",
			cfg.Seed, len(dets), hard, validRate[len(validRate)-1], eligSuccess[len(eligSuccess)-1])
	}

	fmt.Println("\nMulti-seed robustness (", *scale, "scale )")
	fmt.Printf("  detections:            %s\n", stats.Summarize(detections))
	fmt.Printf("  plaintext verdicts:    %s\n", stats.Summarize(hardAccessed))
	fmt.Printf("  account validity %%:    %s\n", stats.Summarize(validRate))
	fmt.Printf("  success on eligible %%: %s\n", stats.Summarize(eligSuccess))
	fmt.Printf("  integrity alarms:      %s (must be all zero)\n", stats.Summarize(alarms))
	if _, max := stats.MinMax(alarms); max > 0 {
		fmt.Fprintln(os.Stderr, "tripwire-sweep: INTEGRITY ALARMS FIRED")
		os.Exit(1)
	}
}
