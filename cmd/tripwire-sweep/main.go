// Command tripwire-sweep runs the pilot across many seeds and reports the
// distribution of headline outcomes — demonstrating that the reproduction's
// shapes (detections, validity rates, funnel proportions) are properties of
// the system, not of one lucky random stream.
//
// Seeds run on a worker pool bounded by -parallel (capped at GOMAXPROCS);
// per-seed progress streams to stderr as each study finishes, while the
// stdout summary aggregates in seed order and is byte-identical at any
// parallelism. The sweep exits non-zero if any seed's study carries an
// error or fires an integrity alarm.
//
// Usage:
//
//	tripwire-sweep [-n seeds] [-scale small|paper] [-parallel N]
package main

import (
	"flag"
	"fmt"
	"os"

	"tripwire"
	"tripwire/internal/sweep"
)

func main() {
	n := flag.Int("n", 5, "number of seeds to run")
	scale := flag.String("scale", "small", "study scale: small or paper")
	parallel := flag.Int("parallel", 1, "seeds to run concurrently (capped at GOMAXPROCS; results are identical at any value)")
	flag.Parse()

	if *scale != "small" && *scale != "paper" {
		fmt.Fprintf(os.Stderr, "tripwire-sweep: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	out := sweep.Run(sweep.Options{
		N:        *n,
		Parallel: *parallel,
		ConfigFor: func(seed int64) tripwire.Config {
			var cfg tripwire.Config
			if *scale == "paper" {
				cfg = tripwire.DefaultConfig()
			} else {
				cfg = tripwire.SmallConfig()
			}
			cfg.Seed = seed * 101
			return cfg
		},
		Progress: os.Stderr,
	})

	fmt.Print(out.Render(*scale))
	if err := out.Failed(); err != nil {
		fmt.Fprintln(os.Stderr, "tripwire-sweep:", err)
		os.Exit(1)
	}
}
