// Command tripwire-verify runs the §4.4 integrity checklist on a pilot:
// the evidence chain behind "a successful login means the site was
// compromised" only holds if Tripwire's own infrastructure shows no signs
// of compromise. It verifies that every control login was reported by the
// provider, that no unused honeypot account ever tripped, that every
// detection maps to a site where Tripwire actually held an account, and
// that the anonymized dataset leaks nothing.
//
// Usage:
//
//	tripwire-verify [-scale small|paper] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"tripwire"
	"tripwire/internal/datarelease"
)

func main() {
	scale := flag.String("scale", "small", "study scale: small or paper")
	seed := flag.Int64("seed", 42, "simulation seed")
	flag.Parse()

	var cfg tripwire.Config
	switch *scale {
	case "small":
		cfg = tripwire.SmallConfig()
	case "paper":
		cfg = tripwire.DefaultConfig()
	default:
		fmt.Fprintf(os.Stderr, "tripwire-verify: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	cfg.Seed = *seed
	study := tripwire.New(tripwire.WithConfig(cfg)).Run()
	p := study.Pilot()

	failures := 0
	check := func(name string, ok bool, detail string) {
		status := "PASS"
		if !ok {
			status = "FAIL"
			failures++
		}
		fmt.Printf("  [%s] %-48s %s\n", status, name, detail)
	}

	fmt.Println("Tripwire integrity checklist (paper §4.4)")

	alarms := p.Monitor.Alarms()
	check("no unused honeypot account ever tripped", len(alarms) == 0,
		fmt.Sprintf("%d monitored unused accounts, %d alarms", p.Ledger.UnusedCount(), len(alarms)))

	check("control logins reported by provider", p.Monitor.ControlLoginsSeen() > 0,
		fmt.Sprintf("%d control logins observed", p.Monitor.ControlLoginsSeen()))

	breaches := p.Campaign.Breaches()
	truePositives := true
	for _, d := range p.Monitor.Detections() {
		if _, ok := breaches[d.Domain]; !ok {
			truePositives = false
		}
	}
	check("every detection maps to a real breach", truePositives,
		fmt.Sprintf("%d detections, %d scheduled breaches", len(p.Monitor.Detections()), len(breaches)))

	accounted := true
	for _, d := range p.Monitor.Detections() {
		if len(p.Ledger.SiteRegistrations(d.Domain)) == 0 {
			accounted = false
		}
	}
	check("every detection has a registered identity", accounted, "")

	records := datarelease.Build(p)
	auditErr := datarelease.Audit(records, p)
	detail := fmt.Sprintf("%d records", len(records))
	if auditErr != nil {
		detail = auditErr.Error()
	}
	check("anonymized dataset passes audit", auditErr == nil, detail)

	if failures > 0 {
		fmt.Printf("\n%d integrity checks FAILED\n", failures)
		os.Exit(1)
	}
	fmt.Println("\nall integrity checks passed")
}
