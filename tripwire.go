// Package tripwire is a reproduction of "Tripwire: Inferring Internet Site
// Compromise" (DeBlasio, Savage, Voelker, Snoeren — IMC 2017).
//
// Tripwire registers honey accounts at third-party websites, each sharing a
// unique password with a dedicated email account at a major provider. Any
// later successful login to one of those email accounts is strong — and
// false-positive-free — evidence that the corresponding website's credential
// database was stolen and exploited for password reuse.
//
// The library bundles every subsystem the technique requires, implemented
// from scratch on the standard library: a headless browser and HTML DOM, a
// heuristic registration crawler, an email-provider model with IMAP and
// login telemetry, a Tripwire-side SMTP mail server, an attacker simulation
// (breaches, a real dictionary cracker, a credential-stuffing botnet over a
// synthetic global proxy space), and the inference engine that turns login
// dumps into compromise detections.
//
// Quick start:
//
//	study := tripwire.NewStudy(tripwire.SmallConfig())
//	study.Run()
//	fmt.Println(study.Summary())
//
// The full paper-scale pilot (33,634 sites over the July 2014 – February
// 2017 virtual timeline) runs with DefaultConfig; see cmd/tripwire.
package tripwire

import (
	"strings"

	"tripwire/internal/core"
	"tripwire/internal/disclosure"
	"tripwire/internal/report"
	"tripwire/internal/sim"
)

// Config parameterizes a study; it is the simulation configuration
// re-exported for public use.
type Config = sim.Config

// Batch is one registration campaign over a rank range.
type Batch = sim.Batch

// Detection is the evidence of compromise at one site.
type Detection = core.Detection

// BreachClass classifies what a detection implies about the site's
// password storage.
type BreachClass = core.BreachClass

// Breach classes.
const (
	BreachHashedOnly    = core.BreachHashedOnly
	BreachPlaintext     = core.BreachPlaintext
	BreachIndeterminate = core.BreachIndeterminate
)

// DefaultConfig returns the paper-scale pilot configuration.
func DefaultConfig() Config { return sim.DefaultConfig() }

// SmallConfig returns a scaled-down configuration suitable for tests,
// examples, and quick demos.
func SmallConfig() Config { return sim.SmallConfig() }

// Study is one end-to-end Tripwire pilot: registration, monitoring,
// attacker activity, and inference over a virtual timeline.
type Study struct {
	pilot *sim.Pilot
	ran   bool
}

// NewStudy builds a fully wired study. Call Run to execute it.
func NewStudy(cfg Config) *Study {
	return &Study{pilot: sim.NewPilot(cfg)}
}

// Run executes the study to its configured end date. It is idempotent:
// subsequent calls return immediately.
func (s *Study) Run() *Study {
	if !s.ran {
		s.pilot.Run()
		s.ran = true
	}
	return s
}

// Pilot exposes the underlying simulation state for advanced inspection
// and for the benchmark harness.
func (s *Study) Pilot() *sim.Pilot { return s.pilot }

// Detections returns detected site compromises in first-login order.
func (s *Study) Detections() []*Detection { return s.pilot.Monitor.Detections() }

// Classify returns what the detection implies about the site's password
// storage (plaintext-equivalent vs hashed).
func (s *Study) Classify(d *Detection) BreachClass { return s.pilot.Monitor.Classify(d) }

// IntegrityOK reports whether the monitor saw zero integrity alarms: no
// unused honeypot account was ever accessed.
func (s *Study) IntegrityOK() bool { return len(s.pilot.Monitor.Alarms()) == 0 }

// Summary renders every table and figure of the paper from this run.
func (s *Study) Summary() string {
	p := s.pilot
	var b strings.Builder
	b.WriteString("== Table 1: Estimates of accounts created by account status ==\n")
	b.WriteString(report.RenderTable1(report.Table1(p)))
	b.WriteString("\n== Table 2: Sites with detected login activity ==\n")
	b.WriteString(report.RenderTable2(report.Table2(p)))
	b.WriteString("\n== Table 3: Login activity for compromised accounts ==\n")
	b.WriteString(report.RenderTable3(report.Table3(p)))
	b.WriteString("\n== Table 4: Registration eligibility by rank ==\n")
	b.WriteString(report.RenderTable4(report.Table4(p, eligibilityRanks(p))))
	b.WriteString("\n== Figure 1: Crawler termination codes ==\n")
	b.WriteString(report.RenderFig1(report.Fig1(p)))
	b.WriteString("\n== Figure 2: Registration and login timeline ==\n")
	b.WriteString(report.Fig2(p))
	b.WriteString("\n== Figure 3: Registration funnel ==\n")
	b.WriteString(report.RenderFig3(report.Fig3(p)))
	b.WriteString("\n== Section 6.2: Undetected compromises ==\n")
	b.WriteString(report.RenderMisses(report.MissAnalysis(p)))
	b.WriteString("\n== Section 6.3: Disclosure ==\n")
	b.WriteString(disclosure.Render(disclosure.Summarize(p.Disclosure.Notifications())))
	b.WriteString("\n== Section 6.4: Attacker behaviour ==\n")
	b.WriteString(report.RenderSec64(report.Sec64(p)))
	return b.String()
}

// eligibilityRanks picks the Table 4 sample windows available in the
// configured universe (the paper used ranks 1, 1,000, 10,000 and 100,000).
func eligibilityRanks(p *sim.Pilot) []int {
	var out []int
	for _, r := range []int{1, 1000, 10000, 100000} {
		if r+99 <= p.Cfg.Web.NumSites {
			out = append(out, r)
		}
	}
	if len(out) == 0 {
		out = []int{1}
	}
	return out
}
