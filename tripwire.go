// Package tripwire is a reproduction of "Tripwire: Inferring Internet Site
// Compromise" (DeBlasio, Savage, Voelker, Snoeren — IMC 2017).
//
// Tripwire registers honey accounts at third-party websites, each sharing a
// unique password with a dedicated email account at a major provider. Any
// later successful login to one of those email accounts is strong — and
// false-positive-free — evidence that the corresponding website's credential
// database was stolen and exploited for password reuse.
//
// The library bundles every subsystem the technique requires, implemented
// from scratch on the standard library: a headless browser and HTML DOM, a
// heuristic registration crawler, an email-provider model with IMAP and
// login telemetry, a Tripwire-side SMTP mail server, an attacker simulation
// (breaches, a real dictionary cracker, a credential-stuffing botnet over a
// synthetic global proxy space), and the inference engine that turns login
// dumps into compromise detections.
//
// Quick start:
//
//	study := tripwire.New(
//		tripwire.WithConfig(tripwire.SmallConfig()),
//		tripwire.WithSeed(42),
//	)
//	if err := study.RunContext(ctx); err != nil {
//		log.Fatal(err)
//	}
//	fmt.Println(study.Summary())
//
// Attach telemetry with WithMetrics and watch progress with Events:
//
//	reg := tripwire.NewMetrics()
//	study := tripwire.New(tripwire.WithMetrics(reg))
//	go func() {
//		for ev := range study.Events() {
//			log.Println(ev.Kind, ev.At)
//		}
//	}()
//
// The full paper-scale pilot (33,634 sites over the July 2014 – February
// 2017 virtual timeline) is the default configuration; see cmd/tripwire.
package tripwire

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"

	"tripwire/internal/core"
	"tripwire/internal/disclosure"
	"tripwire/internal/obs"
	"tripwire/internal/report"
	"tripwire/internal/sim"
)

// Config parameterizes a study; it is the simulation configuration
// re-exported for public use.
type Config = sim.Config

// Batch is one registration campaign over a rank range.
type Batch = sim.Batch

// Detection is the evidence of compromise at one site.
type Detection = core.Detection

// BreachClass classifies what a detection implies about the site's
// password storage.
type BreachClass = core.BreachClass

// Breach classes.
const (
	BreachHashedOnly    = core.BreachHashedOnly
	BreachPlaintext     = core.BreachPlaintext
	BreachIndeterminate = core.BreachIndeterminate
)

// Metrics is the observability registry threaded through every subsystem
// of a study: sharded counters, gauges, histograms, and stage spans. Dump
// it with WriteProm/WriteJSON/Snapshot, or serve it over HTTP with the
// -metrics-addr flag on cmd/tripwire.
type Metrics = obs.Registry

// NewMetrics returns an empty metrics registry to pass to WithMetrics.
func NewMetrics() *Metrics { return obs.New() }

// Event is one study progress notification (a completed crawl wave or a
// new detection). See EventKind for the variants and the ordering
// guarantee.
type Event = sim.Event

// EventKind discriminates Events.
type EventKind = sim.EventKind

// Event kinds.
const (
	EventWaveDone  = sim.EventWaveDone
	EventDetection = sim.EventDetection
)

// DefaultConfig returns the paper-scale pilot configuration.
func DefaultConfig() Config { return sim.DefaultConfig() }

// SmallConfig returns a scaled-down configuration suitable for tests,
// examples, and quick demos.
func SmallConfig() Config { return sim.SmallConfig() }

// Option customizes a study built by New. Options are applied on top of
// the base configuration in a fixed precedence: WithConfig replaces the
// base wholesale, and the targeted options (WithWorkers,
// WithTimelineWorkers, WithSeed, WithMetrics) are applied afterwards — so
// the targeted options win regardless of the order they are passed in.
type Option func(*studyOptions)

type studyOptions struct {
	cfg             Config
	cfgSet          bool
	workers         *int
	timelineWorkers *int
	seed            *int64
	metrics         **Metrics
	checkpoint      *checkpointOption
	logSpill        *logSpillOption
	eagerAccounts   *bool
	adaptiveAlign   *bool
}

type checkpointOption struct {
	dir   string
	every int
}

type logSpillOption struct {
	dir    string
	budget int
}

// apply lays the targeted options over cfg (WithConfig replacement has
// already happened by the time this runs).
func (o *studyOptions) apply(cfg *Config) {
	if o.workers != nil {
		cfg.CrawlWorkers = *o.workers
	}
	if o.timelineWorkers != nil {
		cfg.TimelineWorkers = *o.timelineWorkers
	}
	if o.seed != nil {
		cfg.Seed = *o.seed
	}
	if o.metrics != nil {
		cfg.Metrics = *o.metrics
	}
	if o.checkpoint != nil {
		cfg.CheckpointDir = o.checkpoint.dir
		cfg.CheckpointEvery = o.checkpoint.every
	}
	if o.logSpill != nil {
		cfg.LogSpillDir = o.logSpill.dir
		cfg.LogResidentBudget = o.logSpill.budget
	}
	if o.eagerAccounts != nil {
		cfg.EagerAccounts = *o.eagerAccounts
	}
	if o.adaptiveAlign != nil {
		cfg.TimelineAdaptiveAlign = *o.adaptiveAlign
	}
}

// WithConfig replaces the base configuration (DefaultConfig) wholesale.
// It conflicts with Resume, whose configuration comes from the snapshot.
func WithConfig(cfg Config) Option {
	return func(o *studyOptions) { o.cfg, o.cfgSet = cfg, true }
}

// WithWorkers sets how many goroutines crawl a registration wave
// concurrently. Zero means GOMAXPROCS. Results are bit-identical for a
// given seed regardless of the value.
func WithWorkers(n int) Option {
	return func(o *studyOptions) { o.workers = &n }
}

// WithTimelineWorkers sets how many goroutines execute one timeline
// epoch's conflict partitions concurrently (the epoch-parallel
// discrete-event engine). Zero means GOMAXPROCS. Results are bit-identical
// for a given seed regardless of the value.
func WithTimelineWorkers(n int) Option {
	return func(o *studyOptions) { o.timelineWorkers = &n }
}

// WithAdaptiveAlign lets the attacker campaign widen its scheduling grain
// adaptively, packing more independent accounts' visits into each timeline
// epoch so extra timeline workers have more latency to overlap. Results
// remain bit-identical across worker counts for a given seed, but toggling
// the option changes event timestamps like any other attacker-timing
// parameter. Off by default.
func WithAdaptiveAlign(on bool) Option {
	return func(o *studyOptions) { o.adaptiveAlign = &on }
}

// WithSeed sets the master seed; every derived RNG stream follows from it.
func WithSeed(seed int64) Option {
	return func(o *studyOptions) { o.seed = &seed }
}

// WithMetrics attaches a metrics registry. Instruments are observation-only
// — recording draws no randomness and feeds nothing back — so attaching a
// registry never changes study results.
func WithMetrics(r *Metrics) Option {
	return func(o *studyOptions) { o.metrics = &r }
}

// WithCheckpoint writes a resumable snapshot into dir after every Nth
// completed registration wave, named checkpoint-%06d.twsnap by wave count.
// Pass a snapshot to Resume to continue a cancelled study. Checkpointing
// is observation-only: enabling it never changes study results.
func WithCheckpoint(dir string, every int) Option {
	return func(o *studyOptions) { o.checkpoint = &checkpointOption{dir: dir, every: every} }
}

// WithEagerAccounts materializes every provisioned honey account in the
// provider up front instead of deriving it lazily from (seed, rank) on
// first use. Both modes produce byte-identical results — the eager path
// exists as the equivalence oracle and for debugging; lazy (the default)
// is what makes multi-million-account studies fit in memory.
func WithEagerAccounts(eager bool) Option {
	return func(o *studyOptions) { o.eagerAccounts = &eager }
}

// WithLogSpill caps the email provider's in-memory login log at budget
// events; older events spill to CRC-protected cold segment files in dir.
// Spilling is transparent — dumps, detections, and exports are
// byte-identical to an all-resident run — and bounds the resident heap of
// very large or very long studies.
func WithLogSpill(dir string, budget int) Option {
	return func(o *studyOptions) { o.logSpill = &logSpillOption{dir: dir, budget: budget} }
}

// Study is one end-to-end Tripwire pilot: registration, monitoring,
// attacker activity, and inference over a virtual timeline.
type Study struct {
	cfg    Config
	pilot  *sim.Pilot
	events *eventStream
	ran    bool
	err    error
	// phase is the lifecycle marker behind Status. It is stored with
	// release semantics after err, so a concurrent Status observing a
	// terminal phase also observes the error that produced it.
	phase atomic.Int32
}

// New builds a fully wired study from DefaultConfig plus opts. Call
// RunContext (or Run) to execute it. An invalid configuration does not
// panic: the study is built empty, Err reports the validation failure
// immediately, and RunContext returns it.
func New(opts ...Option) *Study {
	o := studyOptions{cfg: DefaultConfig()}
	for _, opt := range opts {
		opt(&o)
	}
	o.apply(&o.cfg)
	s := &Study{cfg: o.cfg, events: newEventStream()}
	if err := sim.Validate(o.cfg); err != nil {
		s.err = err
		s.phase.Store(int32(phaseFailed))
		return s
	}
	s.pilot = sim.NewPilot(o.cfg)
	return s
}

// NewStudy builds a study from an explicit configuration. Every caller in
// the tree has been migrated to New; this wrapper remains only so external
// plain-config callers keep compiling.
//
// Deprecated: use New(WithConfig(cfg)).
func NewStudy(cfg Config) *Study { return New(WithConfig(cfg)) }

// Resume rebuilds a study from a checkpoint written by a run configured
// with WithCheckpoint (or Config.CheckpointEvery/CheckpointDir) and
// prepares it to continue to the configured end date.
//
// The scheduler's pending queue cannot be serialized (it holds closures
// over live subsystem state), so resume replays: the study is rebuilt from
// the checkpoint's embedded configuration, RunContext deterministically
// re-executes the completed prefix — exactly the epoch count the
// checkpoint recorded — verifies the rebuilt state byte-for-byte against
// the snapshot (an error names the first diverging section), and then
// continues. The finished run's results (attempts, detections, login
// logs, events) are byte-identical to an uninterrupted run at any worker
// count. Events replays the full sequence from the start of the study,
// not just the continuation.
//
// Targeted options (WithWorkers, WithTimelineWorkers, WithMetrics,
// WithCheckpoint, WithLogSpill, WithEagerAccounts) adjust runtime knobs on
// the restored configuration. Resume accepts the same Option set as New
// but rejects the two that conflict with a snapshot-borne configuration,
// naming the offending option: WithConfig (the configuration comes from
// the snapshot) and WithSeed (a changed seed would make the replay diverge
// from the attested snapshot).
func Resume(path string, opts ...Option) (*Study, error) {
	o := studyOptions{}
	for _, opt := range opts {
		opt(&o)
	}
	if o.cfgSet {
		return nil, errors.New("tripwire: Resume: option WithConfig conflicts with resuming — the configuration is embedded in the snapshot; drop WithConfig")
	}
	if o.seed != nil {
		return nil, errors.New("tripwire: Resume: option WithSeed conflicts with resuming — the seed is embedded in the snapshot and a changed seed would fail replay attestation; drop WithSeed")
	}
	pilot, err := sim.ResumePilot(path, func(cfg *Config) { o.apply(cfg) })
	if err != nil {
		return nil, err
	}
	return &Study{cfg: pilot.Cfg, pilot: pilot, events: newEventStream()}, nil
}

// RunContext executes the study to its configured end date. For an
// invalid configuration it returns the validation error instead of
// running. The context is checked at wave boundaries: cancelling stops
// the study cleanly after the event in flight, leaving every completed
// wave's results valid, and returns ctx's error.
//
// RunContext is idempotent: second and later calls return the first run's
// error without re-running.
func (s *Study) RunContext(ctx context.Context) error {
	if s.ran {
		return s.err
	}
	s.ran = true
	if s.pilot == nil {
		s.events.Close()
		return s.err
	}
	s.phase.Store(int32(phaseRunning))
	s.pilot.OnEvent = func(ev Event) { s.events.Append(ev) }
	s.err = s.pilot.RunContext(ctx)
	s.events.Close()
	switch {
	case s.pilot.Interrupted:
		s.phase.Store(int32(phaseInterrupted))
	case s.err != nil:
		s.phase.Store(int32(phaseFailed))
	default:
		s.phase.Store(int32(phaseDone))
	}
	return s.err
}

// Run is RunContext with a background context, kept chainable for the
// original API shape. Errors (validation failures, cancellation) are NOT
// swallowed: retrieve them with Err.
func (s *Study) Run() *Study {
	_ = s.RunContext(context.Background())
	return s
}

// Err returns the study's error: the validation error for an invalid
// configuration (set as soon as New returns), the context's error for a
// cancelled run, and nil otherwise.
func (s *Study) Err() error { return s.err }

// Metrics returns the registry attached with WithMetrics, or nil.
func (s *Study) Metrics() *Metrics { return s.cfg.Metrics }

// Interrupted reports whether the run was cancelled before the configured
// end date.
func (s *Study) Interrupted() bool { return s.pilot != nil && s.pilot.Interrupted }

// Pilot exposes the underlying simulation state for advanced inspection
// and for the benchmark harness. It is nil for a study whose configuration
// failed validation (see Err).
func (s *Study) Pilot() *sim.Pilot { return s.pilot }

// Detections returns detected site compromises in first-login order.
func (s *Study) Detections() []*Detection { return s.pilot.Monitor.Detections() }

// Classify returns what the detection implies about the site's password
// storage (plaintext-equivalent vs hashed).
func (s *Study) Classify(d *Detection) BreachClass { return s.pilot.Monitor.Classify(d) }

// IntegrityOK reports whether the monitor saw zero integrity alarms: no
// unused honeypot account was ever accessed.
func (s *Study) IntegrityOK() bool { return len(s.pilot.Monitor.Alarms()) == 0 }

// Summary renders the study status header (a formatter over Status — see
// FormatStatus) followed by every table and figure of the paper. Callers
// that used to scrape counts out of this text should read Status instead;
// Summary is presentation only. For a study whose configuration failed
// validation only the status header (naming the error) is returned.
func (s *Study) Summary() string {
	var b strings.Builder
	b.WriteString("== Study status ==\n")
	b.WriteString(FormatStatus(s.Status()))
	if s.pilot == nil {
		return b.String()
	}
	p := s.pilot
	b.WriteString("\n== Table 1: Estimates of accounts created by account status ==\n")
	b.WriteString(report.RenderTable1(report.Table1(p)))
	b.WriteString("\n== Table 2: Sites with detected login activity ==\n")
	b.WriteString(report.RenderTable2(report.Table2(p)))
	b.WriteString("\n== Table 3: Login activity for compromised accounts ==\n")
	b.WriteString(report.RenderTable3(report.Table3(p)))
	b.WriteString("\n== Table 4: Registration eligibility by rank ==\n")
	b.WriteString(report.RenderTable4(report.Table4(p, eligibilityRanks(p))))
	b.WriteString("\n== Figure 1: Crawler termination codes ==\n")
	b.WriteString(report.RenderFig1(report.Fig1(p)))
	b.WriteString("\n== Figure 2: Registration and login timeline ==\n")
	b.WriteString(report.Fig2(p))
	b.WriteString("\n== Figure 3: Registration funnel ==\n")
	b.WriteString(report.RenderFig3(report.Fig3(p)))
	b.WriteString("\n== Section 6.2: Undetected compromises ==\n")
	b.WriteString(report.RenderMisses(report.MissAnalysis(p)))
	b.WriteString("\n== Section 6.3: Disclosure ==\n")
	b.WriteString(disclosure.Render(disclosure.Summarize(p.Disclosure.Notifications())))
	b.WriteString("\n== Section 6.4: Attacker behaviour ==\n")
	b.WriteString(report.RenderSec64(report.Sec64(p)))
	return b.String()
}

// eligibilityRanks picks the Table 4 sample windows available in the
// configured universe (the paper used ranks 1, 1,000, 10,000 and 100,000).
func eligibilityRanks(p *sim.Pilot) []int {
	var out []int
	for _, r := range []int{1, 1000, 10000, 100000} {
		if r+99 <= p.Cfg.Web.NumSites {
			out = append(out, r)
		}
	}
	if len(out) == 0 {
		out = []int{1}
	}
	return out
}
