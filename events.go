package tripwire

import (
	"context"

	"tripwire/internal/evbus"
)

// eventStream is the study's event fan-out: a sequence-numbered broadcast
// buffer (internal/evbus) that retains the full stream so any number of
// subscribers can attach at any time — before, during, or after the run —
// and each replays exactly the suffix it asks for. The pilot emits
// synchronously on the scheduler goroutine; emit only appends and wakes
// per-subscriber pumps, so a slow or absent consumer can never
// backpressure the simulation. This is what SSE replay and the webhook
// dispatcher in internal/registry consume.
type eventStream = evbus.Hub[Event]

func newEventStream() *eventStream { return evbus.New[Event]() }

// Events returns a channel replaying every study progress event from the
// start: one EventWaveDone per crawl wave and one EventDetection per newly
// detected site. It is EventsSince(0), kept as the original single-call
// API shape.
//
// Ordering guarantee: events arrive in virtual-time order, exactly as the
// scheduler fired them, and the sequence for a given seed is identical
// regardless of worker count. The channel closes after the run finishes
// (or immediately on a validation failure). Unlike earlier versions, every
// call returns an independent channel: subscribing twice yields two full
// replays.
func (s *Study) Events() <-chan Event { return s.EventsSince(0) }

// EventsSince returns a channel delivering every event with a sequence
// number greater than seq, in order. Sequence numbers are 1-based and
// gapless: the first event of the study is 1, so EventsSince(0) replays
// the full stream and EventsSince(n) resumes a consumer that has already
// handled the first n events (the SSE Last-Event-ID contract). A seq
// beyond the current high-water mark is clamped: the subscriber sees only
// future events. Subscribe and close are safe from any goroutine.
//
// The subscription lives until the stream closes; consumers that may
// abandon the channel early (an SSE client that disconnects) should use
// EventsSinceContext so the delivery goroutine is released.
func (s *Study) EventsSince(seq uint64) <-chan Event { return s.events.Since(seq) }

// EventsSinceContext is EventsSince with cancellation: when ctx is done
// the subscription detaches and the channel closes, whether or not the
// study has finished.
func (s *Study) EventsSinceContext(ctx context.Context, seq uint64) <-chan Event {
	return s.events.SinceCtx(ctx, seq)
}

// EventSeq returns the stream's high-water sequence number: how many
// events the study has emitted so far. Safe to call while the study runs.
func (s *Study) EventSeq() uint64 { return s.events.Len() }
