package tripwire

import "sync"

// eventStream buffers pilot events and forwards them to at most one
// subscriber channel. The buffer is unbounded but small in practice — one
// event per wave plus one per detection — so the scheduler goroutine never
// blocks on a slow (or absent) consumer, and a subscriber that arrives
// after the run replays the full sequence.
type eventStream struct {
	mu     sync.Mutex
	buf    []Event
	closed bool

	wake chan struct{} // 1-buffered: "buffer or closed state changed"
	once sync.Once
	ch   chan Event
}

func newEventStream() *eventStream {
	return &eventStream{wake: make(chan struct{}, 1)}
}

// emit appends one event; called synchronously from the scheduler.
func (es *eventStream) emit(ev Event) {
	es.mu.Lock()
	es.buf = append(es.buf, ev)
	es.mu.Unlock()
	es.signal()
}

// close marks the stream finished; the subscriber channel closes once the
// remaining buffer is drained.
func (es *eventStream) close() {
	es.mu.Lock()
	es.closed = true
	es.mu.Unlock()
	es.signal()
}

func (es *eventStream) signal() {
	select {
	case es.wake <- struct{}{}:
	default:
	}
}

// subscribe returns the delivery channel, starting the pump on first call.
func (es *eventStream) subscribe() <-chan Event {
	es.once.Do(func() {
		es.ch = make(chan Event)
		go es.pump()
	})
	return es.ch
}

// pump forwards buffered events in emission order, then waits for more;
// when the stream is closed and drained it closes the channel.
func (es *eventStream) pump() {
	next := 0
	for {
		es.mu.Lock()
		for next < len(es.buf) {
			ev := es.buf[next]
			next++
			es.mu.Unlock()
			es.ch <- ev
			es.mu.Lock()
		}
		closed := es.closed
		es.mu.Unlock()
		if closed {
			close(es.ch)
			return
		}
		<-es.wake
	}
}
